package dist

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"kmgraph/internal/kmachine"
	"kmgraph/internal/telemetry"
	"kmgraph/internal/transport"
	"kmgraph/internal/transport/tcp"
)

// RetryPolicy governs coordinator-side recovery from failed job
// attempts. Every attempt is a fresh job under a new cluster ID — the
// workers rematerialize their shards from the source spec and replay
// the exact deterministic computation, so a recovered result is
// bit-identical to a fault-free run (results and Metrics both).
type RetryPolicy struct {
	// Attempts is the total try budget, first attempt included
	// (default 1 = never retry).
	Attempts int
	// Backoff separates the failure from the first retry (default
	// 500ms); each further retry doubles it, with ±25% jitter so a
	// fleet of coordinators does not re-dial in lockstep.
	Backoff time.Duration
	// MaxBackoff caps the grown delay (default 10s).
	MaxBackoff time.Duration
	// RetryAll retries any failure. The default retries only link-down
	// failures (crash, stall, desync): a malformed job or an unreadable
	// source fails identically every time, so it fails fast.
	RetryAll bool
	// Respawn, when set, runs before each retry with the failing
	// attempt's error. It may restart dead workers (the tcp dialer's
	// retry window then picks the replacements up) and return a
	// replacement address list; returning nil keeps the current
	// addresses, returning an error abandons the job.
	Respawn func(ctx context.Context, attempt int, cause error, addrs []string) ([]string, error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	if p.Backoff == 0 {
		p.Backoff = 500 * time.Millisecond
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 10 * time.Second
	}
	return p
}

// retryable reports whether err is worth another attempt under p.
func (p RetryPolicy) retryable(err error) bool {
	return p.RetryAll || errors.Is(err, transport.ErrLinkDown)
}

// delay computes the backoff before retry number retry (1-based), with
// ±25% jitter.
func (p RetryPolicy) delay(retry int) time.Duration {
	d := p.Backoff << (retry - 1)
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	jitter := time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	return d + jitter
}

// runRetry drives attempts of runOnce under the retry policy,
// re-dialing (and, via Respawn, replacing) workers between attempts.
func runRetry(ctx context.Context, addrs []string, job Job, opts CoordOptions) (*kmachine.Result, int, error) {
	opts = opts.withDefaults()
	pol := opts.Retry
	var firstFail time.Time
	for attempt := 1; ; attempt++ {
		res, n, err := runOnce(ctx, addrs, job, opts)
		if err == nil {
			if attempt > 1 {
				recoveryHistogram().Observe(time.Since(firstFail).Seconds())
			}
			return res, n, nil
		}
		if ctx.Err() != nil || attempt >= pol.Attempts || !pol.retryable(err) {
			return nil, 0, err
		}
		if firstFail.IsZero() {
			firstFail = time.Now()
		}
		retriesCounter().Inc()
		if pol.Respawn != nil {
			replacement, rerr := pol.Respawn(ctx, attempt, err, addrs)
			if rerr != nil {
				return nil, 0, rerr
			}
			if replacement != nil {
				addrs = replacement
			}
		}
		t := time.NewTimer(pol.delay(attempt))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, 0, ctx.Err()
		}
	}
}

// Recovery telemetry lands in the same registry as the transport's
// (kmserve and kmworker redirect it into their serving registry), so
// retries, missed heartbeats, and recovery latency show on /metrics
// next to the link counters.

func retriesCounter() *telemetry.Counter {
	return tcp.Telemetry().Counter("kmgraph_dist_retries_total",
		"Distributed job attempts retried after a failure.")
}

func heartbeatsMissedCounter() *telemetry.Counter {
	return tcp.Telemetry().Counter("kmgraph_dist_heartbeats_missed_total",
		"Worker control connections declared stalled after heartbeat silence.")
}

func workerFailuresCounter(reason transport.LinkDownReason) *telemetry.Counter {
	return tcp.Telemetry().Counter("kmgraph_dist_worker_failures_total",
		"Worker failures observed by the coordinator's gather, by classification.",
		telemetry.Label{Name: "reason", Value: string(reason)})
}

func recoveryHistogram() *telemetry.Histogram {
	return tcp.Telemetry().HistogramWith(telemetry.LatencyBuckets,
		"kmgraph_dist_recovery_seconds",
		"Time from a job's first failure to its successful recovered completion.")
}
