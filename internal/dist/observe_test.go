package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
	"kmgraph/internal/store"
	"kmgraph/internal/telemetry"
	"kmgraph/internal/transport"
	"kmgraph/internal/transport/chaos"
)

// sumSpanRounds totals the engine rounds one worker's spans cover.
func sumSpanRounds(spans []telemetry.PhaseSpan) int {
	total := 0
	for _, sp := range spans {
		total += sp.Rounds()
	}
	return total
}

// tracePids collects the distinct pids of a trace's span ("X") events.
func tracePids(tr telemetry.Trace) map[int]int {
	pids := make(map[int]int)
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			pids[ev.Pid]++
		}
	}
	return pids
}

// TestDistTraceTelescopesConnectivity is the tentpole acceptance for
// cross-process tracing: a traced TCP connectivity job produces one
// span stream per worker whose round totals each telescope exactly to
// the merged Metrics.Rounds (itself pinned bit-identical to the local
// golden), and the assembled Chrome trace has one pid per worker.
func TestDistTraceTelescopesConnectivity(t *testing.T) {
	const (
		n, m = 600, 1800
		gs   = int64(7)
	)
	cfg := core.Config{K: 6, Seed: 11}
	golden, err := core.RunSource(graph.StreamGNM(n, m, gs), cfg)
	if err != nil {
		t.Fatal(err)
	}

	addrs := startWorkers(t, 3)
	trace := &JobTrace{}
	spec := fmt.Sprintf("gnm:%d:%d:%d", n, m, gs)
	res, err := RunConnectivityOpts(context.Background(), addrs, spec, cfg, CoordOptions{Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rounds != golden.Metrics.Rounds {
		t.Fatalf("merged rounds %d != golden %d", res.Metrics.Rounds, golden.Metrics.Rounds)
	}
	if trace.TraceID() == 0 {
		t.Fatal("coordinator minted no trace ID")
	}

	ws := trace.WorkerSpans()
	if len(ws) != len(addrs) {
		t.Fatalf("trace covers %d workers, want %d", len(ws), len(addrs))
	}
	for _, w := range ws {
		if len(w.Spans) == 0 {
			t.Fatalf("worker %d streamed no spans", w.Index)
		}
		if got := sumSpanRounds(w.Spans); got != res.Metrics.Rounds {
			t.Errorf("worker %d span rounds sum to %d, want merged Metrics.Rounds %d",
				w.Index, got, res.Metrics.Rounds)
		}
	}

	pids := tracePids(trace.Assemble())
	if len(pids) != len(addrs) {
		t.Fatalf("assembled trace has pids %v, want one per worker", pids)
	}
	for i := range addrs {
		if pids[i] == 0 {
			t.Errorf("assembled trace has no span events for worker pid %d", i)
		}
	}
}

// TestDistTraceTelescopesMST is the same telescoping acceptance for a
// traced MST job served from a kmgs store.
func TestDistTraceTelescopesMST(t *testing.T) {
	const n, m = 400, 1200
	g := graph.WithDistinctWeights(graph.GNM(n, m, 5), 6)
	path := filepath.Join(t.TempDir(), "g.kmgs")
	if err := store.WriteFile(path, g.Source()); err != nil {
		t.Fatal(err)
	}
	cfg := core.MSTConfig{Config: core.Config{K: 4, Seed: 3}}

	addrs := startWorkers(t, 2)
	trace := &JobTrace{}
	res, err := RunMSTOpts(context.Background(), addrs, "store:"+path, cfg, CoordOptions{Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	ws := trace.WorkerSpans()
	if len(ws) != len(addrs) {
		t.Fatalf("trace covers %d workers, want %d", len(ws), len(addrs))
	}
	for _, w := range ws {
		if got := sumSpanRounds(w.Spans); got != res.Metrics.Rounds {
			t.Errorf("worker %d span rounds sum to %d, want merged Metrics.Rounds %d",
				w.Index, got, res.Metrics.Rounds)
		}
	}
	if pids := tracePids(trace.Assemble()); len(pids) != len(addrs) {
		t.Fatalf("assembled trace has pids %v, want one per worker", pids)
	}
}

// TestRetryTracesSuccessfulAttempt pins that a traced job that recovers
// via retry reports the clean replay's spans: the per-worker round sums
// still telescope to the recovered (bit-identical) Metrics.Rounds, not
// to the aborted first attempt's partial progress.
func TestRetryTracesSuccessfulAttempt(t *testing.T) {
	const (
		n, m = 8000, 24000
		gs   = int64(3)
	)
	cfg := core.Config{K: 6, Seed: 5}

	_, a0 := startWorker(t)
	victim, a1 := startWorker(t)
	go func() {
		waitJobRunning(t, victim)
		victim.Close()
	}()

	respawned := 0
	trace := &JobTrace{}
	opts := CoordOptions{
		Trace: trace,
		Retry: RetryPolicy{
			Attempts: 3,
			Respawn:  respawnDead(t, &respawned),
		},
	}
	spec := fmt.Sprintf("gnm:%d:%d:%d", n, m, gs)
	res, err := RunConnectivityOpts(context.Background(), []string{a0, a1}, spec, cfg, opts)
	if err != nil {
		t.Fatalf("job did not recover: %v", err)
	}
	if respawned == 0 {
		t.Fatal("job succeeded without respawning the killed worker; the kill missed the run")
	}
	for _, w := range trace.WorkerSpans() {
		if got := sumSpanRounds(w.Spans); got != res.Metrics.Rounds {
			t.Errorf("worker %d span rounds sum to %d after recovery, want %d",
				w.Index, got, res.Metrics.Rounds)
		}
	}
}

// stubTransport is a minimal inner backend for driving the chaos layer
// directly: every Round advances with no peers and no deliveries.
type stubTransport struct{ rounds int }

func (s *stubTransport) Hosted() (int, int) { return 0, 1 }
func (s *stubTransport) Round(in *transport.RoundIn, out *transport.RoundOut) error {
	s.rounds++
	out.Advanced = true
	out.Running = 1
	return nil
}
func (s *stubTransport) Pending() bool          { return false }
func (s *stubTransport) Remnants() (int, int64) { return 0, 0 }
func (s *stubTransport) Close() error           { return nil }

// TestChaosCrashFlightSurvivesErrorFrame is the post-mortem acceptance:
// a chaos-injected crash-at-round attaches the flight recorder's
// snapshot of the preceding rounds to the LinkDownError, and that
// snapshot survives the control-link error frame encode/decode — so a
// coordinator sees the final rounds of traffic a crashed worker staged.
func TestChaosCrashFlightSurvivesErrorFrame(t *testing.T) {
	const crashAt = 5
	tr := chaos.New(&stubTransport{}, chaos.Plan{CrashAtRound: crashAt})
	var out transport.RoundOut
	var roundErr error
	for i := 0; i < crashAt; i++ {
		in := transport.RoundIn{Msgs: []transport.Message{
			{Src: 0, Dst: 0, Data: make([]byte, 16+i)},
		}}
		if roundErr = tr.Round(&in, &out); roundErr != nil {
			break
		}
	}
	if roundErr == nil {
		t.Fatal("chaos plan never crashed")
	}
	var ld *transport.LinkDownError
	if !errors.As(roundErr, &ld) || ld.Reason != transport.ReasonChaos {
		t.Fatalf("err = %v, want chaos-classified LinkDownError", roundErr)
	}
	if len(ld.Flight) != crashAt {
		t.Fatalf("flight snapshot has %d rounds, want %d (the staged rounds plus the crash)", len(ld.Flight), crashAt)
	}
	// The first crashAt-1 entries are staged traffic; the last is the
	// crash itself.
	for i, rf := range ld.Flight[:crashAt-1] {
		if len(rf.Links) != 1 || rf.Links[0].FramesSent != 1 || rf.Links[0].BytesSent != int64(16+i) {
			t.Fatalf("flight round %d = %+v, want 1 frame of %d bytes", i, rf, 16+i)
		}
	}
	if ld.Flight[crashAt-1].Err == "" {
		t.Fatal("terminal flight entry carries no error")
	}

	// The snapshot must cross the wire: encode as a worker error frame,
	// decode as the coordinator would.
	ef, err := decodeErrorFrame(appendErrorFrame(nil, fmt.Errorf("dist: running job: %w", roundErr)))
	if err != nil {
		t.Fatal(err)
	}
	if !ef.linkDown {
		t.Fatal("chaos crash not classified link-down on the wire")
	}
	var rld *transport.LinkDownError
	if !errors.As(ef.err(), &rld) {
		t.Fatal("decoded error lost the LinkDownError type")
	}
	if len(rld.Flight) != len(ld.Flight) {
		t.Fatalf("decoded flight has %d rounds, want %d", len(rld.Flight), len(ld.Flight))
	}
	for i := range ld.Flight {
		want, got := ld.Flight[i], rld.Flight[i]
		if got.Seq != want.Seq || got.WaitNs != want.WaitNs || got.Err != want.Err ||
			len(got.Links) != len(want.Links) {
			t.Fatalf("flight round %d drifted across the wire: %+v vs %+v", i, got, want)
		}
		for j := range want.Links {
			if got.Links[j] != want.Links[j] {
				t.Fatalf("flight round %d link %d drifted: %+v vs %+v", i, j, got.Links[j], want.Links[j])
			}
		}
	}
}

// TestFlightLogDumpSchema pins the -flight-dump JSON schema: one file
// per populated side, each parsing back into FlightDump with the
// expected side tags and round payloads.
func TestFlightLogDumpSchema(t *testing.T) {
	fl := &FlightLog{}
	fl.reset()
	rec := fl.recorder(0)
	rec.Record(transport.RoundFlight{Seq: 1, Links: []transport.LinkFlight{{Peer: 0, FramesRecv: 1, BytesRecv: 64}}})
	rec.Record(transport.RoundFlight{Seq: 2, Links: []transport.LinkFlight{{Peer: 0, FramesRecv: 1, BytesRecv: 32}}})
	fl.setRemote(1, []transport.RoundFlight{
		{Seq: 40, WaitNs: 1000, Links: []transport.LinkFlight{{Peer: 0, FramesSent: 2, BytesSent: 99}}},
		{Seq: 41, Err: "boom"},
	})

	dir := t.TempDir()
	if err := fl.Dump(dir); err != nil {
		t.Fatal(err)
	}
	check := func(name, side string, worker, rounds int) {
		t.Helper()
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		var d FlightDump
		if err := json.Unmarshal(b, &d); err != nil {
			t.Fatalf("%s does not parse: %v", name, err)
		}
		if d.Side != side || d.Worker != worker || len(d.Rounds) != rounds {
			t.Fatalf("%s = side %q worker %d rounds %d, want %q/%d/%d",
				name, d.Side, d.Worker, len(d.Rounds), side, worker, rounds)
		}
	}
	check("coordinator-worker-0.json", "coordinator", 0, 2)
	check("remote-worker-1.json", "worker", 1, 2)
}
