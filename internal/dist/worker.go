package dist

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"kmgraph/internal/core"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/transport"
	"kmgraph/internal/transport/tcp"
	"kmgraph/internal/wire"
)

// WorkerOptions tune a worker process.
type WorkerOptions struct {
	// Transport tunes the peer links (zero value = tcp defaults).
	Transport tcp.Options
	// MeshTimeout bounds forming the full peer mesh for one job
	// (default 60s).
	MeshTimeout time.Duration
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.MeshTimeout == 0 {
		o.MeshTimeout = 60 * time.Second
	}
	return o
}

// Worker serves distributed k-machine jobs: it accepts control
// connections carrying job specs and peer connections opening transport
// links, routes each by its first frame, and runs one engine instance
// per job over the hosted machine range the spec assigns it. Jobs are
// independent — a worker serves concurrent jobs from different
// coordinators, each with its own mesh keyed by cluster ID.
type Worker struct {
	ln   net.Listener
	opts WorkerOptions

	mu     sync.Mutex
	meshes map[uint64]*meshInbox

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

// inboundPeer is a routed peer connection whose hello has been read.
type inboundPeer struct {
	conn  net.Conn
	hello *tcp.Hello
}

type meshInbox struct {
	ch      chan inboundPeer
	created time.Time
}

// NewWorker wraps a listener. Call Serve to start accepting.
func NewWorker(ln net.Listener, opts WorkerOptions) *Worker {
	return &Worker{
		ln:     ln,
		opts:   opts.withDefaults(),
		meshes: make(map[uint64]*meshInbox),
		closed: make(chan struct{}),
	}
}

// Addr returns the listener address (dialable by coordinator and peers).
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Serve accepts and routes connections until Close. It returns nil
// after a clean Close.
func (w *Worker) Serve() error {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			select {
			case <-w.closed:
				return nil
			default:
				return err
			}
		}
		w.wg.Add(1)
		go w.route(conn)
	}
}

// Close stops accepting and waits for in-flight jobs to finish their
// connection handling.
func (w *Worker) Close() error {
	w.closeOnce.Do(func() {
		close(w.closed)
		w.ln.Close()
	})
	w.wg.Wait()
	return nil
}

// route reads a connection's first frame and dispatches: a Hello opens
// a peer link (parked on its cluster's mesh inbox until the job claims
// it), a Job runs a job with this connection as the control channel.
func (w *Worker) route(conn net.Conn) {
	defer w.wg.Done()
	topts := w.opts.Transport
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	var buf []byte
	t, body, err := tcp.ReadFrame(conn, &buf)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	switch t {
	case tcp.FrameHello:
		h, err := tcp.DecodeHello(body)
		if err != nil {
			conn.Close()
			return
		}
		inbox := w.inboxFor(h.ClusterID)
		select {
		case inbox <- inboundPeer{conn: conn, hello: h}:
		default:
			conn.Close() // inbox full: a runaway dialer, drop it
		}
	case tcp.FrameJob:
		job, err := DecodeJob(body)
		if err != nil {
			writeError(conn, topts, err)
			conn.Close()
			return
		}
		w.runJob(conn, job)
	default:
		conn.Close()
	}
}

// inboxFor returns (creating if needed) the mesh inbox for a cluster,
// pruning inboxes abandoned for longer than two mesh timeouts.
func (w *Worker) inboxFor(clusterID uint64) chan inboundPeer {
	w.mu.Lock()
	defer w.mu.Unlock()
	cutoff := time.Now().Add(-2 * w.opts.MeshTimeout)
	for id, m := range w.meshes {
		if id != clusterID && m.created.Before(cutoff) {
			drainInbox(m.ch)
			delete(w.meshes, id)
		}
	}
	m, ok := w.meshes[clusterID]
	if !ok {
		m = &meshInbox{ch: make(chan inboundPeer, 256), created: time.Now()}
		w.meshes[clusterID] = m
	}
	return m.ch
}

func (w *Worker) dropInbox(clusterID uint64) {
	w.mu.Lock()
	m, ok := w.meshes[clusterID]
	delete(w.meshes, clusterID)
	w.mu.Unlock()
	if ok {
		drainInbox(m.ch)
	}
}

func drainInbox(ch chan inboundPeer) {
	for {
		select {
		case ip := <-ch:
			ip.conn.Close()
		default:
			return
		}
	}
}

// runJob executes one job with conn as the control channel: the result
// (or error) frame goes back on it, and the job aborts if the
// coordinator hangs up.
func (w *Worker) runJob(conn net.Conn, job *Job) {
	defer conn.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The coordinator stays silent until the job ends; any frame (Bye =
	// explicit cancel) or a closed connection aborts the job.
	go func() {
		var buf []byte
		for {
			if _, _, err := tcp.ReadFrame(conn, &buf); err != nil {
				cancel()
				return
			}
		}
	}()
	go func() {
		// A worker shutting down cancels its jobs.
		select {
		case <-w.closed:
			cancel()
		case <-ctx.Done():
		}
	}()

	body, err := w.execute(ctx, job)
	topts := w.opts.Transport
	if err != nil {
		writeError(conn, topts, err)
		return
	}
	writeFrameTo(conn, topts, tcp.FrameResult, body)
}

// execute runs the job's hosted slice and returns the encoded result
// frame body.
func (w *Worker) execute(ctx context.Context, job *Job) ([]byte, error) {
	me := job.Workers[job.Index]
	lo, hi := me.Lo, me.Hi
	k := job.K()
	base := job.config()

	peers, err := w.formMesh(ctx, job)
	if err != nil {
		return nil, fmt.Errorf("dist: forming mesh: %w", err)
	}
	peersOwned := true // until the transport takes them
	defer func() {
		if peersOwned {
			for _, p := range peers {
				p.Close()
			}
		}
	}()

	src, closer, err := OpenJobSource(job.Source)
	if err != nil {
		return nil, err
	}
	part, err := kmachine.LoadShardsRange(src, k, uint64(base.Seed)^0x9e37, lo, hi)
	closer.Close()
	if err != nil {
		return nil, err
	}
	n := part.N()

	var handler kmachine.Handler
	var resolved core.Config
	view := func(id int) core.GraphView { return part.View(id) }
	switch job.Kind {
	case KindConnectivity:
		cfg := job.Conn.WithDefaults(n)
		resolved = cfg
		handler = core.ConnectivityHandler(view, cfg)
	case KindMST:
		cfg := job.MST.WithDefaults(n)
		resolved = cfg.Config
		handler = core.MSTHandler(view, cfg)
	default:
		return nil, fmt.Errorf("dist: unknown job kind %d", job.Kind)
	}

	cluster, err := kmachine.NewWithTransport(kmachine.Config{
		K:                   k,
		BandwidthBits:       resolved.BandwidthBits,
		MessageOverheadBits: resolved.MessageOverheadBits,
		Seed:                resolved.Seed,
		MaxRounds:           resolved.MaxRounds,
	}, func(p transport.Params, met *transport.Metrics, workers int) (transport.Transport, error) {
		tr, err := tcp.New(p, met, workers, lo, hi, peers)
		if err == nil {
			peersOwned = false
		}
		return tr, err
	})
	if err != nil {
		return nil, err
	}
	kres, err := cluster.RunContext(ctx, handler)
	if err != nil {
		return nil, err
	}

	body := wire.AppendUvarint(nil, uint64(n))
	body = wire.AppendUvarint(body, uint64(lo))
	body = wire.AppendUvarint(body, uint64(hi))
	body = transport.AppendMetrics(body, &kres.Metrics)
	for id := lo; id < hi; id++ {
		body, err = core.AppendOutput(body, kres.Outputs[id])
		if err != nil {
			return nil, err
		}
	}
	return body, nil
}

// formMesh establishes this worker's peer links: dial every lower-index
// participant, accept from every higher-index one (routed here by the
// listener via the cluster's mesh inbox).
func (w *Worker) formMesh(ctx context.Context, job *Job) ([]*tcp.Peer, error) {
	me := job.Workers[job.Index]
	base := job.config()
	ours := &tcp.Hello{
		ClusterID:           job.ClusterID,
		K:                   base.K,
		Seed:                base.Seed,
		Index:               job.Index,
		Lo:                  me.Lo,
		Hi:                  me.Hi,
		BandwidthBits:       base.BandwidthBits,
		MessageOverheadBits: base.MessageOverheadBits,
	}
	var peers []*tcp.Peer
	fail := func(err error) ([]*tcp.Peer, error) {
		for _, p := range peers {
			p.Close()
		}
		w.dropInbox(job.ClusterID)
		return nil, err
	}

	inbox := w.inboxFor(job.ClusterID)
	for j := 0; j < job.Index; j++ {
		p, err := tcp.Dial(job.Workers[j].Addr, ours, j, w.opts.Transport)
		if err != nil {
			return fail(err)
		}
		peers = append(peers, p)
	}

	have := make(map[int]bool)
	deadline := time.NewTimer(w.opts.MeshTimeout)
	defer deadline.Stop()
	for need := len(job.Workers) - 1 - job.Index; need > 0; {
		select {
		case ip := <-inbox:
			if ip.hello.Index <= job.Index || ip.hello.Index >= len(job.Workers) || have[ip.hello.Index] {
				ip.conn.Close()
				continue
			}
			p, err := tcp.AcceptPeer(ip.conn, ip.hello, ours, w.opts.Transport)
			if err != nil {
				// A stale retry or a mismatched hello; keep waiting for a
				// good link from that index.
				ip.conn.Close()
				continue
			}
			have[p.Index] = true
			peers = append(peers, p)
			need--
		case <-deadline.C:
			return fail(fmt.Errorf("dist: mesh incomplete after %v: %w",
				w.opts.MeshTimeout, transport.ErrLinkDown))
		case <-ctx.Done():
			return fail(ctx.Err())
		}
	}
	w.dropInbox(job.ClusterID)
	return peers, nil
}

func writeFrameTo(conn net.Conn, opts tcp.Options, t tcp.FrameType, body []byte) error {
	if wt := opts.WriteTimeout; wt > 0 {
		conn.SetWriteDeadline(time.Now().Add(wt))
	} else {
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	}
	_, err := conn.Write(tcp.AppendFrame(nil, t, body))
	return err
}

func writeError(conn net.Conn, opts tcp.Options, jobErr error) {
	writeFrameTo(conn, opts, tcp.FrameError, appendErrorFrame(nil, jobErr))
}
