package dist

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kmgraph/internal/core"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/telemetry"
	"kmgraph/internal/transport"
	"kmgraph/internal/transport/tcp"
	"kmgraph/internal/wire"
)

// WorkerOptions tune a worker process.
type WorkerOptions struct {
	// Transport tunes the peer links (zero value = tcp defaults).
	Transport tcp.Options
	// MeshTimeout bounds forming the full peer mesh for one job
	// (default 60s).
	MeshTimeout time.Duration
	// HeartbeatInterval separates the liveness beats a worker writes on
	// each job's control connection (default 2s; negative disables). The
	// coordinator's HeartbeatTimeout must comfortably exceed it.
	HeartbeatInterval time.Duration
	// Logger, when non-nil, receives structured records for job
	// failures — link-down failures include the engine's flight-recorder
	// snapshot, so a dead mesh leaves a greppable last-K-rounds
	// post-mortem in the worker's log.
	Logger *slog.Logger
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.MeshTimeout == 0 {
		o.MeshTimeout = 60 * time.Second
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = 2 * time.Second
	}
	return o
}

// Worker serves distributed k-machine jobs: it accepts control
// connections carrying job specs and peer connections opening transport
// links, routes each by its first frame, and runs one engine instance
// per job over the hosted machine range the spec assigns it. Jobs are
// independent — a worker serves concurrent jobs from different
// coordinators, each with its own mesh keyed by cluster ID.
type Worker struct {
	ln   net.Listener
	opts WorkerOptions

	mu     sync.Mutex
	meshes map[uint64]*meshInbox
	active map[uint64]*jobState // in-flight jobs by serial
	serial uint64

	drainOnce sync.Once
	abortOnce sync.Once
	closed    chan struct{} // stop accepting (drain or close)
	aborted   chan struct{} // cancel in-flight jobs (close only)
	wg        sync.WaitGroup
}

// JobStatus describes one in-flight job for supervision and drain
// reporting.
type JobStatus struct {
	ClusterID uint64
	TraceID   uint64 // 0 when the coordinator is not tracing
	Kind      Kind
	Lo, Hi    int // hosted machine range
	Rounds    uint64
	Started   time.Time
}

// jobState is the worker's supervision record for one running job. The
// cluster pointer is set once the engine exists; heartbeats and Jobs()
// snapshot live round counts through it.
type jobState struct {
	clusterID uint64
	traceID   uint64
	kind      Kind
	lo, hi    int
	started   time.Time
	cluster   atomic.Pointer[kmachine.Cluster]
	spans     atomic.Pointer[telemetry.SpanRecorder] // set for traced jobs
}

// rounds reports the job's live round count (0 before the engine
// starts or after it finishes).
func (s *jobState) rounds() uint64 {
	if c := s.cluster.Load(); c != nil {
		if m, ok := c.Snapshot(); ok {
			return uint64(m.Rounds)
		}
	}
	return 0
}

// drainSpans pops up to max freshly completed phase spans for the next
// heartbeat (nil for untraced jobs).
func (s *jobState) drainSpans(max int) []telemetry.PhaseSpan {
	if r := s.spans.Load(); r != nil {
		return r.Drain(max)
	}
	return nil
}

// inboundPeer is a routed peer connection whose hello has been read.
type inboundPeer struct {
	conn  net.Conn
	hello *tcp.Hello
}

type meshInbox struct {
	ch      chan inboundPeer
	created time.Time
}

// NewWorker wraps a listener. Call Serve to start accepting.
func NewWorker(ln net.Listener, opts WorkerOptions) *Worker {
	return &Worker{
		ln:      ln,
		opts:    opts.withDefaults(),
		meshes:  make(map[uint64]*meshInbox),
		active:  make(map[uint64]*jobState),
		closed:  make(chan struct{}),
		aborted: make(chan struct{}),
	}
}

// Addr returns the listener address (dialable by coordinator and peers).
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Serve accepts and routes connections until Close. It returns nil
// after a clean Close.
func (w *Worker) Serve() error {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			select {
			case <-w.closed:
				return nil
			default:
				return err
			}
		}
		w.wg.Add(1)
		go w.route(conn)
	}
}

// Close stops accepting, aborts in-flight jobs, and waits for them to
// finish their connection handling.
func (w *Worker) Close() error {
	w.stopAccepting()
	w.abortOnce.Do(func() { close(w.aborted) })
	w.wg.Wait()
	return nil
}

// Drain stops accepting new connections but lets in-flight jobs run to
// completion. It returns nil once the worker is idle; if ctx expires
// first, the remaining jobs are aborted (as Close would) and ctx's
// error is returned after they unwind. A job still forming its mesh
// when Drain fires cannot complete (the listener no longer routes peer
// links) and fails with its mesh timeout.
func (w *Worker) Drain(ctx context.Context) error {
	w.stopAccepting()
	idle := make(chan struct{})
	go func() {
		w.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		w.abortOnce.Do(func() { close(w.aborted) })
		<-idle
		return ctx.Err()
	}
}

func (w *Worker) stopAccepting() {
	w.drainOnce.Do(func() {
		close(w.closed)
		w.ln.Close()
	})
}

// Jobs snapshots the in-flight jobs, oldest first. Round counts are
// live (engine snapshots), so a supervisor can log per-cluster progress
// while draining.
func (w *Worker) Jobs() []JobStatus {
	w.mu.Lock()
	states := make([]*jobState, 0, len(w.active))
	for _, st := range w.active {
		states = append(states, st)
	}
	w.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].started.Before(states[j].started) })
	out := make([]JobStatus, len(states))
	for i, st := range states {
		out[i] = JobStatus{
			ClusterID: st.clusterID,
			TraceID:   st.traceID,
			Kind:      st.kind,
			Lo:        st.lo,
			Hi:        st.hi,
			Rounds:    st.rounds(),
			Started:   st.started,
		}
	}
	return out
}

func (w *Worker) registerJob(job *Job) (uint64, *jobState) {
	me := job.Workers[job.Index]
	st := &jobState{
		clusterID: job.ClusterID,
		traceID:   job.TraceID,
		kind:      job.Kind,
		lo:        me.Lo,
		hi:        me.Hi,
		started:   time.Now(),
	}
	w.mu.Lock()
	w.serial++
	id := w.serial
	w.active[id] = st
	w.mu.Unlock()
	return id, st
}

func (w *Worker) unregisterJob(id uint64) {
	w.mu.Lock()
	delete(w.active, id)
	w.mu.Unlock()
}

// route reads a connection's first frame and dispatches: a Hello opens
// a peer link (parked on its cluster's mesh inbox until the job claims
// it), a Job runs a job with this connection as the control channel.
func (w *Worker) route(conn net.Conn) {
	defer w.wg.Done()
	topts := w.opts.Transport
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	var buf []byte
	t, body, err := tcp.ReadFrame(conn, &buf)
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	switch t {
	case tcp.FrameHello:
		h, err := tcp.DecodeHello(body)
		if err != nil {
			conn.Close()
			return
		}
		inbox := w.inboxFor(h.ClusterID)
		select {
		case inbox <- inboundPeer{conn: conn, hello: h}:
		default:
			conn.Close() // inbox full: a runaway dialer, drop it
		}
	case tcp.FrameJob:
		job, err := DecodeJob(body)
		if err != nil {
			writeError(conn, topts, err)
			conn.Close()
			return
		}
		w.runJob(conn, job)
	default:
		conn.Close()
	}
}

// inboxFor returns (creating if needed) the mesh inbox for a cluster,
// pruning inboxes abandoned for longer than two mesh timeouts.
func (w *Worker) inboxFor(clusterID uint64) chan inboundPeer {
	w.mu.Lock()
	defer w.mu.Unlock()
	cutoff := time.Now().Add(-2 * w.opts.MeshTimeout)
	for id, m := range w.meshes {
		if id != clusterID && m.created.Before(cutoff) {
			drainInbox(m.ch)
			delete(w.meshes, id)
		}
	}
	m, ok := w.meshes[clusterID]
	if !ok {
		m = &meshInbox{ch: make(chan inboundPeer, 256), created: time.Now()}
		w.meshes[clusterID] = m
	}
	return m.ch
}

func (w *Worker) dropInbox(clusterID uint64) {
	w.mu.Lock()
	m, ok := w.meshes[clusterID]
	delete(w.meshes, clusterID)
	w.mu.Unlock()
	if ok {
		drainInbox(m.ch)
	}
}

func drainInbox(ch chan inboundPeer) {
	for {
		select {
		case ip := <-ch:
			ip.conn.Close()
		default:
			return
		}
	}
}

// runJob executes one job with conn as the control channel: the result
// (or error) frame goes back on it, and the job aborts if the
// coordinator hangs up.
func (w *Worker) runJob(conn net.Conn, job *Job) {
	defer conn.Close()
	id, st := w.registerJob(job)
	defer w.unregisterJob(id)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The coordinator stays silent until the job ends; any frame (Bye =
	// explicit cancel) or a closed connection aborts the job.
	go func() {
		var buf []byte
		for {
			if _, _, err := tcp.ReadFrame(conn, &buf); err != nil {
				cancel()
				return
			}
		}
	}()
	go func() {
		// An aborting worker (Close, or an expired Drain) cancels its
		// jobs; a plain Drain lets them finish.
		select {
		case <-w.aborted:
			cancel()
		case <-ctx.Done():
		}
	}()

	// Heartbeats flow from job start (mesh formation and shard loading
	// count as liveness too). The beater is stopped before the result
	// write so the control connection has a single writer at a time.
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	if iv := w.opts.HeartbeatInterval; iv > 0 {
		go w.heartbeat(conn, st, iv, hbStop, hbDone, cancel)
	} else {
		close(hbDone)
	}

	body, err := w.execute(ctx, job, st)
	close(hbStop)
	<-hbDone
	topts := w.opts.Transport
	if err != nil {
		// A job this worker aborted by shutting down is a lost worker
		// from the coordinator's point of view: report it as link-down
		// so the failure classifies as retryable, not as a bad job.
		select {
		case <-w.aborted:
			if !errors.Is(err, transport.ErrLinkDown) {
				err = &transport.LinkDownError{Peer: -1, Reason: transport.ReasonCrash,
					Err: fmt.Errorf("dist: worker shutting down: %w", err)}
			}
		default:
		}
		w.logFailure(job, err)
		writeError(conn, topts, err)
		return
	}
	writeFrameTo(conn, topts, tcp.FrameResult, body)
}

// logFailure emits a structured record for a failed job. Link-down
// failures carry the engine's flight-recorder snapshot: the same last-
// K-rounds history the coordinator receives in the error frame, logged
// locally so a worker's log is a self-contained post-mortem.
func (w *Worker) logFailure(job *Job, err error) {
	lg := w.opts.Logger
	if lg == nil {
		return
	}
	attrs := []any{
		slog.String("cluster", fmt.Sprintf("%#x", job.ClusterID)),
		slog.String("kind", job.Kind.String()),
		slog.Int("worker", job.Index),
	}
	var ld *transport.LinkDownError
	if errors.As(err, &ld) {
		attrs = append(attrs,
			slog.Int("peer", ld.Peer),
			slog.String("reason", string(ld.Reason)),
			slog.Uint64("round", ld.Round),
			slog.Int("flight_rounds", len(ld.Flight)),
			slog.Any("flight", ld.Flight),
		)
		lg.Error("dist: job link down", attrs...)
		return
	}
	attrs = append(attrs, slog.String("err", err.Error()))
	lg.Error("dist: job failed", attrs...)
}

// heartbeat writes a liveness beat on the control connection every
// interval until stopped. A failed write means the coordinator is gone:
// the job is cancelled rather than left running unobserved.
func (w *Worker) heartbeat(conn net.Conn, st *jobState, interval time.Duration,
	stop <-chan struct{}, done chan<- struct{}, cancel context.CancelFunc) {
	defer close(done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var buf []byte
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			buf = tcp.AppendFrame(buf[:0], tcp.FrameHeartbeat,
				appendHeartbeat(nil, st.clusterID, st.rounds(), st.drainSpans(maxSpanBatch)))
			conn.SetWriteDeadline(time.Now().Add(interval))
			if _, err := conn.Write(buf); err != nil {
				cancel()
				return
			}
		}
	}
}

// execute runs the job's hosted slice and returns the encoded result
// frame body. The engine is published into st once it exists, so
// heartbeats carry live round counts.
func (w *Worker) execute(ctx context.Context, job *Job, st *jobState) ([]byte, error) {
	me := job.Workers[job.Index]
	lo, hi := me.Lo, me.Hi
	k := job.K()
	base := job.config()

	peers, err := w.formMesh(ctx, job)
	if err != nil {
		return nil, fmt.Errorf("dist: forming mesh: %w", err)
	}
	peersOwned := true // until the transport takes them
	defer func() {
		if peersOwned {
			for _, p := range peers {
				p.Close()
			}
		}
	}()

	src, closer, err := OpenJobSource(job.Source)
	if err != nil {
		return nil, err
	}
	part, err := kmachine.LoadShardsRange(src, k, uint64(base.Seed)^0x9e37, lo, hi)
	closer.Close()
	if err != nil {
		return nil, err
	}
	n := part.N()

	// Traced jobs record phase spans: the engine's phase hook (on the
	// lowest hosted machine) marks each phase boundary, annotated with
	// local wire-traffic and barrier-wait deltas read from the tcp
	// transport's flight recorder. The heartbeat loop streams the spans
	// back in bounded batches; the remainder rides the result frame.
	var rec *telemetry.SpanRecorder
	var flight *transport.FlightRecorder // set by the transport factory below
	if job.TraceID != 0 {
		rec = telemetry.NewSpanRecorder(func() (int64, int64, int64) {
			if flight == nil {
				return 0, 0, 0
			}
			_, fr, by, wait := flight.Totals()
			return fr, by, wait
		})
		st.spans.Store(rec)
	}

	var handler kmachine.Handler
	var resolved core.Config
	view := func(id int) core.GraphView { return part.View(id) }
	switch job.Kind {
	case KindConnectivity:
		cfg := job.Conn.WithDefaults(n)
		if rec != nil {
			cfg.PhaseHook, cfg.PhaseHookID = rec.Hook(), lo
		}
		resolved = cfg
		handler = core.ConnectivityHandler(view, cfg)
	case KindMST:
		cfg := job.MST.WithDefaults(n)
		if rec != nil {
			cfg.PhaseHook, cfg.PhaseHookID = rec.Hook(), lo
		}
		resolved = cfg.Config
		handler = core.MSTHandler(view, cfg)
	default:
		return nil, fmt.Errorf("dist: unknown job kind %d", job.Kind)
	}

	cluster, err := kmachine.NewWithTransport(kmachine.Config{
		K:                   k,
		BandwidthBits:       resolved.BandwidthBits,
		MessageOverheadBits: resolved.MessageOverheadBits,
		Seed:                resolved.Seed,
		MaxRounds:           resolved.MaxRounds,
	}, func(p transport.Params, met *transport.Metrics, workers int) (transport.Transport, error) {
		tr, err := tcp.New(p, met, workers, lo, hi, peers)
		if err == nil {
			peersOwned = false
			flight = tr.Flight()
		}
		return tr, err
	})
	if err != nil {
		return nil, err
	}
	st.cluster.Store(cluster)
	kres, err := cluster.RunContext(ctx, handler)
	if err != nil {
		return nil, err
	}
	var tail []telemetry.PhaseSpan
	if rec != nil {
		// Seal the trailing sync span so per-worker span rounds
		// telescope exactly to the merged Metrics.Rounds, then flush
		// whatever the heartbeats have not yet carried.
		rec.Finish(kres.Metrics.Rounds)
		tail = rec.Drain(0)
	}

	body := wire.AppendUvarint(nil, uint64(n))
	body = wire.AppendUvarint(body, uint64(lo))
	body = wire.AppendUvarint(body, uint64(hi))
	body = transport.AppendMetrics(body, &kres.Metrics)
	for id := lo; id < hi; id++ {
		body, err = core.AppendOutput(body, kres.Outputs[id])
		if err != nil {
			return nil, err
		}
	}
	body = appendSpans(body, tail)
	return body, nil
}

// formMesh establishes this worker's peer links: dial every lower-index
// participant, accept from every higher-index one (routed here by the
// listener via the cluster's mesh inbox).
func (w *Worker) formMesh(ctx context.Context, job *Job) ([]*tcp.Peer, error) {
	me := job.Workers[job.Index]
	base := job.config()
	ours := &tcp.Hello{
		ClusterID:           job.ClusterID,
		K:                   base.K,
		Seed:                base.Seed,
		Index:               job.Index,
		Lo:                  me.Lo,
		Hi:                  me.Hi,
		BandwidthBits:       base.BandwidthBits,
		MessageOverheadBits: base.MessageOverheadBits,
	}
	var peers []*tcp.Peer
	fail := func(err error) ([]*tcp.Peer, error) {
		for _, p := range peers {
			p.Close()
		}
		w.dropInbox(job.ClusterID)
		return nil, err
	}

	inbox := w.inboxFor(job.ClusterID)
	for j := 0; j < job.Index; j++ {
		p, err := tcp.Dial(job.Workers[j].Addr, ours, j, w.opts.Transport)
		if err != nil {
			return fail(err)
		}
		peers = append(peers, p)
	}

	have := make(map[int]bool)
	deadline := time.NewTimer(w.opts.MeshTimeout)
	defer deadline.Stop()
	for need := len(job.Workers) - 1 - job.Index; need > 0; {
		select {
		case ip := <-inbox:
			if ip.hello.Index <= job.Index || ip.hello.Index >= len(job.Workers) || have[ip.hello.Index] {
				ip.conn.Close()
				continue
			}
			p, err := tcp.AcceptPeer(ip.conn, ip.hello, ours, w.opts.Transport)
			if err != nil {
				// A stale retry or a mismatched hello; keep waiting for a
				// good link from that index.
				ip.conn.Close()
				continue
			}
			have[p.Index] = true
			peers = append(peers, p)
			need--
		case <-deadline.C:
			return fail(fmt.Errorf("dist: mesh incomplete after %v: %w",
				w.opts.MeshTimeout, transport.ErrLinkDown))
		case <-ctx.Done():
			return fail(ctx.Err())
		}
	}
	w.dropInbox(job.ClusterID)
	return peers, nil
}

func writeFrameTo(conn net.Conn, opts tcp.Options, t tcp.FrameType, body []byte) error {
	if wt := opts.WriteTimeout; wt > 0 {
		conn.SetWriteDeadline(time.Now().Add(wt))
	} else {
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	}
	_, err := conn.Write(tcp.AppendFrame(nil, t, body))
	return err
}

func writeError(conn net.Conn, opts tcp.Options, jobErr error) {
	writeFrameTo(conn, opts, tcp.FrameError, appendErrorFrame(nil, jobErr))
}
