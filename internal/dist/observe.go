// Coordinator-side observability state: the assembled cross-process
// job trace and the flight-recorder log backing -flight-dump.

package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"kmgraph/internal/telemetry"
	"kmgraph/internal/transport"
)

// maxTraceSpansPerWorker bounds one worker's accumulated span stream
// (phase counts are O(log n); the cap only guards a runaway engine).
const maxTraceSpansPerWorker = 1 << 16

// JobTrace collects the phase spans workers stream back on their
// control connections and assembles them into one multi-pid Chrome
// trace. Hand one to CoordOptions.Trace; after a successful run,
// Assemble returns the trace of the attempt that succeeded (each retry
// resets the collection, so a recovered run traces its clean replay).
type JobTrace struct {
	mu      sync.Mutex
	job     string
	traceID uint64
	workers []telemetry.WorkerSpans
}

// reset starts a fresh attempt: one empty span stream per worker.
func (t *JobTrace) reset(job *Job, ranges [][2]int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.job = job.Kind.String()
	t.traceID = job.TraceID
	t.workers = make([]telemetry.WorkerSpans, len(ranges))
	for i, r := range ranges {
		t.workers[i] = telemetry.WorkerSpans{Index: i, Lo: r[0], Hi: r[1]}
	}
}

// add appends one worker's span batch (heartbeat or result tail).
func (t *JobTrace) add(idx int, spans []telemetry.PhaseSpan) {
	if len(spans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx < 0 || idx >= len(t.workers) {
		return
	}
	w := &t.workers[idx]
	if room := maxTraceSpansPerWorker - len(w.Spans); room < len(spans) {
		spans = spans[:max(room, 0)]
	}
	w.Spans = append(w.Spans, spans...)
}

// TraceID returns the ID the coordinator minted into the job spec.
func (t *JobTrace) TraceID() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceID
}

// WorkerSpans returns a copy of the per-worker span streams, spans in
// time order (batches can arrive slightly out of order across the
// heartbeat/result boundary).
func (t *JobTrace) WorkerSpans() []telemetry.WorkerSpans {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]telemetry.WorkerSpans, len(t.workers))
	for i, w := range t.workers {
		out[i] = w
		out[i].Spans = append([]telemetry.PhaseSpan(nil), w.Spans...)
		sort.SliceStable(out[i].Spans, func(a, b int) bool {
			return out[i].Spans[a].StartUs < out[i].Spans[b].StartUs
		})
	}
	return out
}

// Assemble builds the multi-pid Chrome trace (pid = worker index).
func (t *JobTrace) Assemble() telemetry.Trace {
	ws := t.WorkerSpans()
	t.mu.Lock()
	job, id := t.job, t.traceID
	t.mu.Unlock()
	return telemetry.AssembleDistTrace(job, id, ws)
}

// FlightLog is the coordinator's post-mortem state for one distributed
// run: a flight recorder per control link (every frame a worker sends
// is one "round" of that link) and any remote snapshot a worker's
// error frame carried. Hand one to CoordOptions.Flight; after a failed
// run, Dump writes one JSON file per populated side for -flight-dump.
type FlightLog struct {
	mu      sync.Mutex
	control map[int]*transport.FlightRecorder
	remote  map[int][]transport.RoundFlight
}

// reset starts a fresh attempt.
func (l *FlightLog) reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.control = make(map[int]*transport.FlightRecorder)
	l.remote = make(map[int][]transport.RoundFlight)
}

// recorder returns (creating if needed) worker idx's control-link
// recorder.
func (l *FlightLog) recorder(idx int) *transport.FlightRecorder {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.control == nil {
		l.control = make(map[int]*transport.FlightRecorder)
	}
	r, ok := l.control[idx]
	if !ok {
		r = transport.NewFlightRecorder(0)
		l.control[idx] = r
	}
	return r
}

// setRemote stores the flight snapshot worker idx's error frame carried.
func (l *FlightLog) setRemote(idx int, fl []transport.RoundFlight) {
	if len(fl) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.remote == nil {
		l.remote = make(map[int][]transport.RoundFlight)
	}
	l.remote[idx] = fl
}

// Remote returns the snapshot worker idx reported, if any.
func (l *FlightLog) Remote(idx int) []transport.RoundFlight {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.remote[idx]
}

// FlightDump is the JSON schema of one -flight-dump file.
type FlightDump struct {
	// Side is "coordinator" (our view of the worker's control link) or
	// "worker" (the snapshot the worker's error frame carried — its
	// engine's view of its peer links).
	Side   string                  `json:"side"`
	Worker int                     `json:"worker"`
	Rounds []transport.RoundFlight `json:"rounds"`
}

// Dump writes the log as JSON files under dir (created if needed):
// coordinator-worker-<i>.json for each control link and
// remote-worker-<i>.json for each worker-reported snapshot.
func (l *FlightLog) Dump(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	l.mu.Lock()
	type entry struct {
		name string
		d    FlightDump
	}
	var entries []entry
	for idx, r := range l.control {
		//kmvet:ignore each dump writes its own idx-keyed file; write order immaterial
		entries = append(entries, entry{
			name: fmt.Sprintf("coordinator-worker-%d.json", idx),
			d:    FlightDump{Side: "coordinator", Worker: idx, Rounds: r.Snapshot()},
		})
	}
	for idx, fl := range l.remote {
		//kmvet:ignore each dump writes its own idx-keyed file; write order immaterial
		entries = append(entries, entry{
			name: fmt.Sprintf("remote-worker-%d.json", idx),
			d:    FlightDump{Side: "worker", Worker: idx, Rounds: fl},
		})
	}
	l.mu.Unlock()
	for _, e := range entries {
		b, err := json.MarshalIndent(e.d, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, e.name), append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
