package dist

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
	"kmgraph/internal/kmachine"
	"kmgraph/internal/store"
	"kmgraph/internal/transport"
)

// metricsFingerprint folds every field of a Metrics — including the
// full LinkBits matrix and per-machine counters — so any drift between
// the local and TCP backends shows up as a mismatch.
func metricsFingerprint(m *kmachine.Metrics) uint64 {
	h := fnv.New64a()
	add := func(x int64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(uint64(x) >> (8 * i))
		}
		h.Write(b[:])
	}
	add(int64(m.Rounds))
	add(m.Messages)
	add(m.PayloadBytes)
	add(m.MaxLinkBits)
	add(int64(m.DroppedMessages))
	for _, row := range m.LinkBits {
		for _, b := range row {
			add(b)
		}
	}
	for i := range m.SentMsgs {
		add(m.SentMsgs[i])
		add(m.RecvMsgs[i])
	}
	return h.Sum64()
}

// startWorkers launches count in-process workers on localhost listeners
// and returns their dialable addresses.
func startWorkers(t *testing.T, count int) []string {
	t.Helper()
	addrs := make([]string, count)
	for i := 0; i < count; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		w := NewWorker(ln, WorkerOptions{MeshTimeout: 30 * time.Second})
		addrs[i] = w.Addr()
		go w.Serve()
		t.Cleanup(func() { w.Close() })
	}
	return addrs
}

// TestGoldenConnectivityLocalVsTCP pins the tentpole acceptance: the
// same graph, k, and seed produce bit-identical results and Metrics
// fingerprints whether the k machines share a process (local backend)
// or run distributed over TCP across three worker processes.
func TestGoldenConnectivityLocalVsTCP(t *testing.T) {
	const (
		n, m = 600, 1800
		gs   = int64(7)
		k    = 6
		seed = int64(11)
	)
	cfg := core.Config{K: k, Seed: seed}

	local, err := core.RunSource(graph.StreamGNM(n, m, gs), cfg)
	if err != nil {
		t.Fatal(err)
	}

	addrs := startWorkers(t, 3)
	spec := fmt.Sprintf("gnm:%d:%d:%d", n, m, gs)
	dist, err := RunConnectivity(context.Background(), addrs, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if dist.Components != local.Components {
		t.Errorf("components: tcp %d, local %d", dist.Components, local.Components)
	}
	if dist.Phases != local.Phases || dist.SketchFailures != local.SketchFailures {
		t.Errorf("phases/failures: tcp %d/%d, local %d/%d",
			dist.Phases, dist.SketchFailures, local.Phases, local.SketchFailures)
	}
	for v := range local.Labels {
		if dist.Labels[v] != local.Labels[v] {
			t.Fatalf("label of vertex %d: tcp %d, local %d", v, dist.Labels[v], local.Labels[v])
		}
	}
	lf, df := metricsFingerprint(&local.Metrics), metricsFingerprint(&dist.Metrics)
	if lf != df {
		t.Errorf("metrics fingerprint drifted: tcp %d, local %d\n tcp:   %+v\n local: %+v",
			df, lf, dist.Metrics, local.Metrics)
	}
	if local.Metrics.Rounds == 0 || local.Metrics.Messages == 0 {
		t.Fatalf("degenerate local run: %+v", local.Metrics)
	}
}

// TestGoldenMSTLocalVsTCP pins the same equality for MST, serving the
// graph from a kmgs store so every worker loads its slice shard-direct.
func TestGoldenMSTLocalVsTCP(t *testing.T) {
	const (
		n, m = 400, 1200
		k    = 4
		seed = int64(3)
	)
	g := graph.WithDistinctWeights(graph.GNM(n, m, 5), 6)
	path := filepath.Join(t.TempDir(), "g.kmgs")
	if err := store.WriteFile(path, g.Source()); err != nil {
		t.Fatal(err)
	}
	cfg := core.MSTConfig{Config: core.Config{K: k, Seed: seed}}

	local, err := core.RunMST(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	addrs := startWorkers(t, 2)
	dist, err := RunMST(context.Background(), addrs, "store:"+path, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if dist.TotalWeight != local.TotalWeight || len(dist.Edges) != len(local.Edges) {
		t.Errorf("forest: tcp weight=%d/%d edges, local weight=%d/%d edges",
			dist.TotalWeight, len(dist.Edges), local.TotalWeight, len(local.Edges))
	}
	for i := range local.Edges {
		if dist.Edges[i] != local.Edges[i] {
			t.Fatalf("edge %d: tcp %+v, local %+v", i, dist.Edges[i], local.Edges[i])
		}
	}
	lf, df := metricsFingerprint(&local.Metrics), metricsFingerprint(&dist.Metrics)
	if lf != df {
		t.Errorf("metrics fingerprint drifted: tcp %d, local %d", df, lf)
	}
}

// TestConcurrentJobs runs two distributed jobs at once over the same
// worker fleet (distinct cluster IDs route each mesh independently) and
// checks both against their local goldens. Run under -race, this also
// exercises the workers' shared listener routing and telemetry.
func TestConcurrentJobs(t *testing.T) {
	addrs := startWorkers(t, 2)
	jobs := []struct {
		n, m int
		gs   int64
		k    int
		seed int64
	}{
		{500, 1500, 21, 4, 9},
		{450, 900, 22, 6, 13},
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(n, m int, gs int64, k int, seed int64) {
			defer wg.Done()
			cfg := core.Config{K: k, Seed: seed}
			local, err := core.RunSource(graph.StreamGNM(n, m, gs), cfg)
			if err != nil {
				t.Error(err)
				return
			}
			spec := fmt.Sprintf("gnm:%d:%d:%d", n, m, gs)
			dist, err := RunConnectivity(context.Background(), addrs, spec, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			if dist.Components != local.Components {
				t.Errorf("n=%d: components tcp %d, local %d", n, dist.Components, local.Components)
			}
			if metricsFingerprint(&dist.Metrics) != metricsFingerprint(&local.Metrics) {
				t.Errorf("n=%d: metrics fingerprint drifted", n)
			}
		}(j.n, j.m, j.gs, j.k, j.seed)
	}
	wg.Wait()
}

// TestKilledWorkerFailsJob shuts one worker down mid-job and asserts
// the coordinator fails promptly with the typed link-down error instead
// of hanging at the next barrier.
func TestKilledWorkerFailsJob(t *testing.T) {
	lns := make([]net.Listener, 2)
	workers := make([]*Worker, 2)
	addrs := make([]string, 2)
	for i := range workers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		workers[i] = NewWorker(ln, WorkerOptions{MeshTimeout: 30 * time.Second})
		addrs[i] = workers[i].Addr()
		go workers[i].Serve()
	}
	defer workers[0].Close()

	// Big enough to outlive the kill below by a wide margin.
	cfg := core.Config{K: 8, Seed: 1}
	done := make(chan error, 1)
	go func() {
		_, err := RunConnectivity(context.Background(), addrs, "gnm:20000:60000:3", cfg)
		done <- err
	}()

	time.Sleep(300 * time.Millisecond)
	workers[1].Close()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("job succeeded despite a killed worker")
		}
		if !errors.Is(err, transport.ErrLinkDown) {
			t.Fatalf("err = %v, want wrapping transport.ErrLinkDown", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("job hung after killing a worker")
	}
}

// TestSplitRanges pins the contiguous near-even split.
func TestSplitRanges(t *testing.T) {
	r, err := SplitRanges(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 3}, {3, 6}, {6, 8}}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("SplitRanges(8,3) = %v, want %v", r, want)
		}
	}
	if _, err := SplitRanges(2, 3); err == nil {
		t.Fatal("SplitRanges(2,3) should fail: more workers than machines")
	}
	if _, err := SplitRanges(4, 0); err == nil {
		t.Fatal("SplitRanges(4,0) should fail")
	}
}

// TestJobSpecRoundTrip pins the job wire format.
func TestJobSpecRoundTrip(t *testing.T) {
	j := &Job{
		ClusterID: 0xdeadbeef,
		Kind:      KindMST,
		Source:    "store:/tmp/g.kmgs",
		Index:     1,
		Workers: []WorkerSpec{
			{Addr: "a:1", Lo: 0, Hi: 3},
			{Addr: "b:2", Lo: 3, Hi: 8},
		},
	}
	j.MST.K = 8
	j.MST.Seed = 42
	j.MST.StrongOutput = true
	j.MST.MaxElimIters = 7
	j.Conn = j.MST.Config

	got, err := DecodeJob(AppendJob(nil, j))
	if err != nil {
		t.Fatal(err)
	}
	if got.ClusterID != j.ClusterID || got.Kind != j.Kind || got.Source != j.Source ||
		got.Index != j.Index || got.MST.K != 8 || got.MST.Seed != 42 ||
		!got.MST.StrongOutput || got.MST.MaxElimIters != 7 || len(got.Workers) != 2 ||
		got.Workers[1] != j.Workers[1] {
		t.Fatalf("round trip drifted: %+v vs %+v", got, j)
	}

	// Non-contiguous cover must be rejected.
	j.Workers[1].Lo = 4
	if _, err := DecodeJob(AppendJob(nil, j)); err == nil {
		t.Fatal("gap in worker cover not rejected")
	}
}
