package kmachine

import (
	"fmt"
	"io"
	"sort"

	"kmgraph/internal/graph"
)

// ShardPartition is the shard-direct realization of the random vertex
// partition: built by streaming an EdgeSource exactly once per pass and
// hashing each endpoint to its owner machine, so per-machine adjacency
// shards are filled directly from the stream and a coordinator-side
// graph.Graph never exists. This is also the model's own story — in the
// k-machine model edges *arrive* random-partitioned; central
// materialization is an artifact of the simulator, which this loader
// removes.
//
// The result is bit-identical to NewRVP on the same graph and seed: the
// same HomeOf hash assigns vertices, owned lists are ascending, and each
// adjacency row is sorted by neighbor with identical weights — so seeds,
// partitions, round counts, and Metrics of any run are unchanged by
// which load path produced the residency.
type ShardPartition struct {
	n, m   int
	k      int
	lo, hi int // machines whose shards are materialized
	seed   uint64
	owned  [][]int
	adj    []map[int][]graph.Half // per machine: owned vertex -> sorted adjacency
}

// LoadShards streams src into per-machine adjacency shards for k
// machines under the RVP seed. It makes two passes when the source
// supports Reset (degree counting, then a fill into exactly-sized rows
// backed by one arena per machine). Self-loops, out-of-range endpoints,
// and duplicate edges are errors, matching graph.Builder.
func LoadShards(src graph.EdgeSource, k int, seed uint64) (*ShardPartition, error) {
	return LoadShardsRange(src, k, seed, 0, k)
}

// LoadShardsRange is LoadShards restricted to machines [lo, hi): only
// their owned lists and adjacency rows are materialized, so a worker
// process hosting a sub-range of a distributed cluster holds only its
// own slice of the graph. The stream is still validated in full, and
// the shards produced for [lo, hi) are bit-identical to the same
// machines' shards under a full LoadShards with the same seed.
func LoadShardsRange(src graph.EdgeSource, k int, seed uint64, lo, hi int) (*ShardPartition, error) {
	n := src.N()
	if n < 0 {
		return nil, fmt.Errorf("kmachine: negative vertex count %d", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("kmachine: k = %d, need >= 1", k)
	}
	if lo < 0 || hi > k || lo >= hi {
		return nil, fmt.Errorf("kmachine: shard range [%d,%d) outside [0,%d)", lo, hi, k)
	}
	p := &ShardPartition{n: n, k: k, lo: lo, hi: hi, seed: seed,
		owned: make([][]int, k), adj: make([]map[int][]graph.Half, k)}

	if k > 1<<16 {
		return nil, fmt.Errorf("kmachine: k = %d exceeds the shard loader's machine table", k)
	}
	hosted := func(mach uint16) bool { return int(mach) >= lo && int(mach) < hi }
	home := make([]uint16, n)
	perMachine := make([]int, k)
	for v := 0; v < n; v++ {
		h := HomeOf(seed, k, v)
		home[v] = uint16(h)
		perMachine[h]++
	}
	for i := lo; i < hi; i++ {
		p.owned[i] = make([]int, 0, perMachine[i])
		p.adj[i] = make(map[int][]graph.Half, perMachine[i])
	}
	for v := 0; v < n; v++ {
		if hosted(home[v]) {
			p.owned[home[v]] = append(p.owned[home[v]], v)
		}
	}

	// Pass 1: degrees of hosted vertices, so each machine's arena and
	// every row within it are allocated at exactly their final size.
	if err := src.Reset(); err != nil {
		return nil, err
	}
	deg := make([]int32, n)
	m := 0
	for {
		e, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		e = e.Canon()
		if err := checkShardEdge(e, n); err != nil {
			return nil, err
		}
		if hosted(home[e.U]) {
			deg[e.U]++
		}
		if hosted(home[e.V]) {
			deg[e.V]++
		}
		m++
	}
	p.m = m

	// Exactly-sized rows carved from one arena per machine.
	cur := make([]int32, n)
	for i := lo; i < hi; i++ {
		total := 0
		for _, v := range p.owned[i] {
			total += int(deg[v])
		}
		arena := make([]graph.Half, total)
		off := 0
		for _, v := range p.owned[i] {
			d := int(deg[v])
			if d == 0 {
				continue
			}
			p.adj[i][v] = arena[off : off : off+d]
			off += d
		}
	}

	// Pass 2: fill the hosted half-edges of every edge into the owners'
	// rows.
	if err := src.Reset(); err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		e, err := src.Next()
		if err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("kmachine: source shrank between passes (%d of %d edges)", i, m)
			}
			return nil, err
		}
		e = e.Canon()
		if err := checkShardEdge(e, n); err != nil {
			return nil, err
		}
		hu, hv := home[e.U], home[e.V]
		if hosted(hu) {
			if int(cur[e.U]) >= int(deg[e.U]) {
				return nil, fmt.Errorf("kmachine: source changed between passes (row %d overflow)", e.U)
			}
			p.adj[hu][e.U] = append(p.adj[hu][e.U], graph.Half{To: e.V, W: e.W})
			cur[e.U]++
		}
		if hosted(hv) {
			if int(cur[e.V]) >= int(deg[e.V]) {
				return nil, fmt.Errorf("kmachine: source changed between passes (row %d overflow)", e.V)
			}
			p.adj[hv][e.V] = append(p.adj[hv][e.V], graph.Half{To: e.U, W: e.W})
			cur[e.V]++
		}
	}
	if _, err := src.Next(); err != io.EOF {
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("kmachine: source grew between passes")
	}

	// Sort rows by neighbor (a no-op for canonical-row-order sources like
	// the store, whose halves arrive pre-sorted) and reject duplicates.
	for i := lo; i < hi; i++ {
		for v, row := range p.adj[i] {
			if !halvesSorted(row) {
				sort.Slice(row, func(a, b int) bool { return row[a].To < row[b].To })
			}
			for j := 1; j < len(row); j++ {
				if row[j].To == row[j-1].To {
					return nil, fmt.Errorf("kmachine: duplicate edge (%d,%d) in stream", v, row[j].To)
				}
			}
		}
	}
	return p, nil
}

func checkShardEdge(e graph.Edge, n int) error {
	if e.U == e.V {
		return fmt.Errorf("kmachine: self-loop at %d in stream", e.U)
	}
	if e.U < 0 || e.V >= n {
		return fmt.Errorf("kmachine: edge (%d,%d) out of range [0,%d) in stream", e.U, e.V, n)
	}
	return nil
}

func halvesSorted(row []graph.Half) bool {
	for i := 1; i < len(row); i++ {
		if row[i].To < row[i-1].To {
			return false
		}
	}
	return true
}

// N returns the vertex count.
func (p *ShardPartition) N() int { return p.n }

// M returns the edge count of the streamed graph.
func (p *ShardPartition) M() int { return p.m }

// K returns the machine count.
func (p *ShardPartition) K() int { return p.k }

// Home returns the home machine of vertex v (the shared RVP hash).
func (p *ShardPartition) Home(v int) int { return HomeOf(p.seed, p.k, v) }

// Hosted returns the half-open machine range whose shards are
// materialized ([0, K) for LoadShards).
func (p *ShardPartition) Hosted() (lo, hi int) { return p.lo, p.hi }

// Owned returns the vertices homed at machine i (sorted ascending).
// The machine's shard must be materialized.
func (p *ShardPartition) Owned(i int) []int {
	p.checkHosted(i)
	return p.owned[i]
}

func (p *ShardPartition) checkHosted(i int) {
	if i < p.lo || i >= p.hi {
		panic(fmt.Sprintf("kmachine: machine %d outside materialized shard range [%d,%d)",
			i, p.lo, p.hi))
	}
}

// MaxLoad returns the largest number of vertices on one materialized
// machine.
func (p *ShardPartition) MaxLoad() int {
	m := 0
	for i := p.lo; i < p.hi; i++ {
		if len(p.owned[i]) > m {
			m = len(p.owned[i])
		}
	}
	return m
}

// TakeAdj surrenders machine i's adjacency shard to the caller (the
// resident engine adopts it as the machine's mutable view, avoiding a
// second copy of the graph in memory). The partition's own View for
// that machine must not be used afterwards.
func (p *ShardPartition) TakeAdj(i int) map[int][]graph.Half {
	p.checkHosted(i)
	a := p.adj[i]
	p.adj[i] = nil
	return a
}

// View returns machine i's restricted view of the sharded input — the
// same contract as VertexPartition.View.
func (p *ShardPartition) View(i int) *ShardView {
	p.checkHosted(i)
	return &ShardView{id: i, p: p}
}

// ShardView is a machine's local knowledge under a shard-direct load:
// its owned vertices with adjacency, plus the globally computable home
// hash. It implements the same GraphView surface as LocalView.
type ShardView struct {
	id int
	p  *ShardPartition
}

// ID returns the machine this view belongs to.
func (v *ShardView) ID() int { return v.id }

// N returns the vertex count (public knowledge).
func (v *ShardView) N() int { return v.p.n }

// K returns the machine count.
func (v *ShardView) K() int { return v.p.k }

// Owned returns this machine's vertices.
func (v *ShardView) Owned() []int { return v.p.owned[v.id] }

// Home returns the home machine of any vertex.
func (v *ShardView) Home(x int) int { return v.p.Home(x) }

// Adj returns the adjacency list of an owned vertex. Accessing a vertex
// homed elsewhere panics: that would violate the model.
func (v *ShardView) Adj(u int) []graph.Half {
	if v.p.Home(u) != v.id {
		panic(fmt.Sprintf("kmachine: machine %d accessed non-local vertex %d (home %d)",
			v.id, u, v.p.Home(u)))
	}
	return v.p.adj[v.id][u]
}

// Degree returns the degree of an owned vertex.
func (v *ShardView) Degree(u int) int { return len(v.Adj(u)) }
