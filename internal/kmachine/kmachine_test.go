package kmachine

import (
	"errors"
	"fmt"
	"testing"

	"kmgraph/internal/graph"
)

func cfg(k, bw int) Config {
	return Config{K: k, BandwidthBits: bw, MessageOverheadBits: 0, Seed: 1}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{K: 0, BandwidthBits: 8}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := New(Config{K: 2, BandwidthBits: 0}); err == nil {
		t.Error("B=0 should fail")
	}
	if _, err := New(Config{K: 2, BandwidthBits: 8, MessageOverheadBits: -1}); err == nil {
		t.Error("negative overhead should fail")
	}
}

func TestPingPong(t *testing.T) {
	c, _ := New(cfg(2, 1024))
	res, err := c.Run(func(ctx *Ctx) error {
		if ctx.ID() == 0 {
			ctx.Send(1, []byte("ping"))
			msgs := ctx.Step() // round 1: ping in flight
			if len(msgs) != 0 {
				return fmt.Errorf("unexpected early delivery")
			}
			msgs = ctx.Step() // round 2: pong arrives
			if len(msgs) != 1 || string(msgs[0].Data) != "pong" {
				return fmt.Errorf("got %v", msgs)
			}
			return nil
		}
		msgs := ctx.Step() // round 1: receive ping
		if len(msgs) != 1 || string(msgs[0].Data) != "ping" || msgs[0].Src != 0 {
			return fmt.Errorf("got %v", msgs)
		}
		ctx.Send(0, []byte("pong"))
		ctx.Step()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", res.Metrics.Rounds)
	}
	if res.Metrics.Messages != 2 {
		t.Errorf("messages = %d", res.Metrics.Messages)
	}
	if res.Metrics.DroppedMessages != 0 {
		t.Errorf("dropped = %d", res.Metrics.DroppedMessages)
	}
}

func TestBandwidthFragmentation(t *testing.T) {
	// A 100-byte message over an 80-bit (10-byte) link takes 10 rounds.
	c, _ := New(cfg(2, 80))
	res, err := c.Run(func(ctx *Ctx) error {
		if ctx.ID() == 0 {
			ctx.Send(1, make([]byte, 100))
			for i := 0; i < 12; i++ {
				ctx.Step()
			}
			return nil
		}
		got := -1
		for i := 0; i < 12; i++ {
			if msgs := ctx.Step(); len(msgs) > 0 && got == -1 {
				got = ctx.Round()
			}
		}
		if got != 10 {
			return fmt.Errorf("delivered at round %d, want 10", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.LinkBits[0][1] != 800 {
		t.Errorf("link bits = %d, want 800", res.Metrics.LinkBits[0][1])
	}
}

func TestOverheadCharged(t *testing.T) {
	c, _ := New(Config{K: 2, BandwidthBits: 64, MessageOverheadBits: 32, Seed: 1})
	_, err := c.Run(func(ctx *Ctx) error {
		if ctx.ID() == 0 {
			ctx.Send(1, []byte{1, 2, 3, 4}) // 32 payload + 32 overhead = 64 bits
			ctx.Step()
			return nil
		}
		if msgs := ctx.Step(); len(msgs) != 1 {
			return fmt.Errorf("want delivery in 1 round, got %d msgs", len(msgs))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerLinkAndSortedDelivery(t *testing.T) {
	c, _ := New(cfg(3, 4096))
	_, err := c.Run(func(ctx *Ctx) error {
		if ctx.ID() != 2 {
			for i := 0; i < 5; i++ {
				ctx.Send(2, []byte{byte(ctx.ID()), byte(i)})
			}
			ctx.Step()
			return nil
		}
		msgs := ctx.Step()
		if len(msgs) != 10 {
			return fmt.Errorf("got %d msgs", len(msgs))
		}
		// Sorted by src, FIFO within src.
		for i, m := range msgs {
			wantSrc := 0
			if i >= 5 {
				wantSrc = 1
			}
			if m.Src != wantSrc || int(m.Data[1]) != i%5 {
				return fmt.Errorf("msg %d out of order: %v", i, m)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSendFree(t *testing.T) {
	c, _ := New(cfg(2, 8))
	res, err := c.Run(func(ctx *Ctx) error {
		if ctx.ID() == 0 {
			ctx.Send(0, make([]byte, 1000)) // huge, but local
		}
		msgs := ctx.Step()
		if ctx.ID() == 0 && len(msgs) != 1 {
			return fmt.Errorf("self message not delivered next round")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.LinkBits[0][0] != 0 {
		t.Error("self link should not be charged")
	}
	if res.Metrics.Rounds != 1 {
		t.Errorf("rounds = %d", res.Metrics.Rounds)
	}
}

func TestBroadcast(t *testing.T) {
	c, _ := New(cfg(4, 4096))
	_, err := c.Run(func(ctx *Ctx) error {
		if ctx.ID() == 0 {
			ctx.Broadcast([]byte("hi"))
		}
		msgs := ctx.Step()
		if ctx.ID() != 0 && (len(msgs) != 1 || string(msgs[0].Data) != "hi") {
			return fmt.Errorf("machine %d: %v", ctx.ID(), msgs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	c, _ := New(cfg(3, 1024))
	want := errors.New("boom")
	_, err := c.Run(func(ctx *Ctx) error {
		if ctx.ID() == 1 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Errorf("err = %v", err)
	}
}

func TestPanicConverted(t *testing.T) {
	c, _ := New(cfg(2, 1024))
	_, err := c.Run(func(ctx *Ctx) error {
		if ctx.ID() == 0 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error from panic")
	}
}

func TestMaxRoundsAbort(t *testing.T) {
	c, _ := New(Config{K: 2, BandwidthBits: 8, Seed: 1, MaxRounds: 50})
	_, err := c.Run(func(ctx *Ctx) error {
		for { // spin forever
			ctx.Step()
		}
	})
	if !errors.Is(err, ErrMaxRounds) {
		t.Errorf("err = %v, want ErrMaxRounds", err)
	}
}

func TestDroppedAccounting(t *testing.T) {
	c, _ := New(cfg(2, 8)) // 1 byte/round: message still queued at end
	res, err := c.Run(func(ctx *Ctx) error {
		if ctx.ID() == 0 {
			ctx.Send(1, make([]byte, 100))
			ctx.Step()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.DroppedMessages == 0 {
		t.Error("expected dropped message accounting")
	}
}

func TestOutputs(t *testing.T) {
	c, _ := New(cfg(3, 1024))
	res, err := c.Run(func(ctx *Ctx) error {
		ctx.SetOutput(ctx.ID() * 10)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outputs {
		if o.(int) != i*10 {
			t.Errorf("output[%d] = %v", i, o)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (string, int64) {
		c, _ := New(Config{K: 4, BandwidthBits: 128, Seed: 42})
		var trace string
		res, err := c.Run(func(ctx *Ctx) error {
			// Random gossip: each machine sends random bytes to a random
			// peer for 5 rounds.
			for r := 0; r < 5; r++ {
				dst := ctx.Rand().Intn(ctx.K())
				ctx.Send(dst, []byte{byte(ctx.Rand().Intn(256))})
				msgs := ctx.Step()
				if ctx.ID() == 0 {
					for _, m := range msgs {
						trace += fmt.Sprintf("%d:%d;", m.Src, m.Data[0])
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return trace, res.Metrics.TotalBits()
	}
	t1, b1 := run()
	t2, b2 := run()
	if t1 != t2 || b1 != b2 {
		t.Errorf("nondeterministic: %q/%d vs %q/%d", t1, b1, t2, b2)
	}
}

func TestCutBits(t *testing.T) {
	c, _ := New(cfg(4, 4096))
	res, err := c.Run(func(ctx *Ctx) error {
		// 0,1 = side A; 2,3 = side B. Each sends 10 bytes to its "mirror".
		ctx.Send((ctx.ID()+2)%4, make([]byte, 10))
		ctx.Step()
		ctx.Step()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	inA := []bool{true, true, false, false}
	if got := res.Metrics.CutBits(inA); got != 4*80 {
		t.Errorf("cut bits = %d, want 320", got)
	}
	// A cut isolating machine 0 sees only its two flows.
	inA0 := []bool{true, false, false, false}
	if got := res.Metrics.CutBits(inA0); got != 2*80 {
		t.Errorf("cut bits = %d, want 160", got)
	}
}

func TestBandwidthHelper(t *testing.T) {
	if Bandwidth(2) <= 0 {
		t.Error("bandwidth must be positive")
	}
	if Bandwidth(1<<20) <= Bandwidth(16) {
		t.Error("bandwidth should grow with n")
	}
}

func TestRVPBalanceAndLocality(t *testing.T) {
	g := graph.GNM(1000, 3000, 3)
	p := NewRVP(g, 8, 99)
	total := 0
	for i := 0; i < 8; i++ {
		total += len(p.Owned(i))
		for _, v := range p.Owned(i) {
			if p.Home(v) != i {
				t.Fatalf("vertex %d owned by %d but homed at %d", v, i, p.Home(v))
			}
		}
	}
	if total != 1000 {
		t.Errorf("owned total = %d", total)
	}
	// Balance: max load within 3x of mean for n/k = 125.
	if p.MaxLoad() > 3*1000/8 {
		t.Errorf("max load %d too imbalanced", p.MaxLoad())
	}
	// Locality enforcement.
	v := p.View(0)
	if len(v.Owned()) > 0 {
		_ = v.Adj(v.Owned()[0]) // fine
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-local access")
		}
	}()
	other := p.Owned(1)[0]
	_ = v.Adj(other)
}

func TestREPBalance(t *testing.T) {
	g := graph.GNM(500, 4000, 4)
	p := NewREP(g, 10, 7)
	total := 0
	for i := 0; i < 10; i++ {
		total += len(p.OwnedEdges(i))
	}
	if total != 4000 {
		t.Errorf("edges total = %d", total)
	}
	if p.MaxLoad() > 3*4000/10 {
		t.Errorf("max edge load %d too imbalanced", p.MaxLoad())
	}
}

func BenchmarkBarrier(b *testing.B) {
	c, _ := New(Config{K: 8, BandwidthBits: 4096, Seed: 1, MaxRounds: 1 << 30})
	b.ResetTimer()
	_, err := c.Run(func(ctx *Ctx) error {
		for i := 0; i < b.N; i++ {
			ctx.Step()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
