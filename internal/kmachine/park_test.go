package kmachine

import (
	"testing"
	"time"
)

// runWithTimeout guards against the failure mode park bugs produce: a
// cluster that never terminates.
func runWithTimeout(t *testing.T, c *Cluster, h Handler) (*Result, error) {
	t.Helper()
	type out struct {
		res *Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := c.Run(h)
		ch <- out{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-time.After(10 * time.Second):
		t.Fatal("cluster did not terminate")
		return nil, nil
	}
}

// TestParkFlushesQueuedSends: a machine that Sends and then Parks without
// a final Step must still get its messages delivered (the park event
// submits the outbox, exactly like a Step or handler return would).
func TestParkFlushesQueuedSends(t *testing.T) {
	cl, err := New(Config{K: 2, BandwidthBits: 1024, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	release := make(chan struct{})
	res, err := runWithTimeout(t, cl, func(ctx *Ctx) error {
		if ctx.ID() == 1 {
			ctx.Send(0, []byte("parked-send"))
			ctx.Park()
			<-release
			ctx.Unpark()
			return nil
		}
		// Machine 0 steps until the message arrives; machine 1 is parked
		// the whole time, so rounds must advance without it.
		for i := 0; i < 100; i++ {
			if msgs := ctx.Step(); len(msgs) > 0 {
				got <- msgs[0].Data
				close(release)
				return nil
			}
		}
		close(release)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-got:
		if string(data) != "parked-send" {
			t.Fatalf("got %q", data)
		}
	default:
		t.Fatal("message queued before Park was never delivered")
	}
	if res.Metrics.DroppedMessages != 0 {
		t.Fatalf("dropped %d messages", res.Metrics.DroppedMessages)
	}
}

// TestParkBuffersDeliveries: messages sent to a parked machine are
// buffered and handed over on its first Step after Unpark, in order.
func TestParkBuffersDeliveries(t *testing.T) {
	cl, err := New(Config{K: 2, BandwidthBits: 1024, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sent := make(chan struct{})
	var received []string
	res, err := runWithTimeout(t, cl, func(ctx *Ctx) error {
		if ctx.ID() == 0 {
			for _, p := range []string{"a", "b", "c"} {
				ctx.Send(1, []byte(p))
				ctx.Step()
			}
			ctx.Step() // one extra round so the last byte lands
			close(sent)
			return nil
		}
		ctx.Park()
		<-sent
		ctx.Unpark()
		for len(received) < 3 {
			for _, m := range ctx.Step() {
				received = append(received, string(m.Data))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(received) != 3 || received[0] != "a" || received[1] != "b" || received[2] != "c" {
		t.Fatalf("received %v", received)
	}
	if res.Metrics.DroppedMessages != 0 {
		t.Fatalf("dropped %d messages", res.Metrics.DroppedMessages)
	}
}

// TestReturnWhileParked: a machine that returns from its handler while
// still parked must not corrupt the barrier arithmetic — the cluster
// terminates and the active machine keeps stepping normally.
func TestReturnWhileParked(t *testing.T) {
	cl, err := New(Config{K: 3, BandwidthBits: 1024, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, err = runWithTimeout(t, cl, func(ctx *Ctx) error {
		if ctx.ID() != 0 {
			ctx.Park()
			return nil // return without Unpark
		}
		for i := 0; i < 5; i++ {
			ctx.Step()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllParkedQuiescence: when every machine parks, no rounds pass; the
// round counter reflects only the activity around the parked window.
func TestAllParkedQuiescence(t *testing.T) {
	cl, err := New(Config{K: 2, BandwidthBits: 1024, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	barrier := make(chan struct{}, 2)
	res, err := runWithTimeout(t, cl, func(ctx *Ctx) error {
		ctx.Step()
		ctx.Park()
		barrier <- struct{}{}
		if ctx.ID() == 0 {
			// Wait for both to park, then linger so the coordinator sits
			// in its quiescent wait for a while.
			<-barrier
			<-barrier
			time.Sleep(50 * time.Millisecond)
		}
		ctx.Unpark()
		ctx.Step()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rounds > 4 {
		t.Fatalf("rounds = %d; quiescent parked window should not burn rounds", res.Metrics.Rounds)
	}
}
