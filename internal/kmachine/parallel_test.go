package kmachine

import (
	"kmgraph/internal/transport"

	"fmt"
	"hash/fnv"
	"testing"
)

// chatterHandler is a deterministic traffic generator: every machine sends
// a pseudo-random assortment of messages (sizes from tiny to multi-round)
// to pseudo-random destinations for a fixed number of rounds, checking
// that deliveries arrive sorted by source.
func chatterHandler(rounds int) Handler {
	return func(ctx *Ctx) error {
		k := ctx.K()
		for r := 0; r < rounds; r++ {
			nmsg := ctx.Rand().Intn(2 * k)
			for i := 0; i < nmsg; i++ {
				dst := ctx.Rand().Intn(k)
				size := ctx.Rand().Intn(200)
				if ctx.Rand().Intn(8) == 0 {
					size = 400 + ctx.Rand().Intn(800) // multi-round messages
				}
				data := make([]byte, size)
				for j := range data {
					data[j] = byte(ctx.ID() + r + j)
				}
				ctx.Send(dst, data)
			}
			msgs := ctx.Step()
			last := -1
			for _, m := range msgs {
				if m.Src < last {
					return fmt.Errorf("machine %d round %d: deliveries out of source order", ctx.ID(), r)
				}
				last = m.Src
			}
		}
		// Drain whatever is still in flight so nothing is dropped.
		for i := 0; i < 3*rounds; i++ {
			ctx.Step()
		}
		ctx.SetOutput(ctx.Round())
		return nil
	}
}

func runChatter(t *testing.T, k, rounds int) Metrics {
	t.Helper()
	c, err := New(Config{K: k, BandwidthBits: 512, MessageOverheadBits: 32, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(chatterHandler(rounds))
	if err != nil {
		t.Fatal(err)
	}
	return res.Metrics
}

func fingerprint(m Metrics) uint64 {
	h := fnv.New64a()
	add := func(x int64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(uint64(x) >> (8 * i))
		}
		h.Write(b[:])
	}
	add(int64(m.Rounds))
	add(m.Messages)
	add(m.PayloadBytes)
	add(m.MaxLinkBits)
	add(int64(m.DroppedMessages))
	for _, row := range m.LinkBits {
		for _, b := range row {
			add(b)
		}
	}
	for i := range m.SentMsgs {
		add(m.SentMsgs[i])
		add(m.RecvMsgs[i])
	}
	return h.Sum64()
}

// TestParallelTransmitDeterminism forces the sharded transmit path (which
// normally engages only on wide active-link sets with spare CPUs) and
// asserts it produces bit-identical metrics to the serial path. Under
// -race this also exercises the workers' concurrent access to queues,
// bitmaps, LinkBits, and per-destination counters.
func TestParallelTransmitDeterminism(t *testing.T) {
	serial := runChatter(t, 9, 25)
	defer func() { transport.TransmitForceParallel = false }()
	transport.TransmitForceParallel = true
	parallel := runChatter(t, 9, 25)
	if fingerprint(serial) != fingerprint(parallel) {
		t.Fatalf("parallel transmit drifted from serial:\n serial:   %+v\n parallel: %+v", serial, parallel)
	}
	if serial.Messages == 0 || serial.Rounds == 0 {
		t.Fatalf("degenerate chatter run: %+v", serial)
	}
}

// TestParallelTransmitRepeatable runs the forced-parallel path several
// times and asserts identical metrics each time (no scheduling-dependent
// accounting).
func TestParallelTransmitRepeatable(t *testing.T) {
	defer func() { transport.TransmitForceParallel = false }()
	transport.TransmitForceParallel = true
	want := fingerprint(runChatter(t, 6, 15))
	for i := 0; i < 3; i++ {
		if got := fingerprint(runChatter(t, 6, 15)); got != want {
			t.Fatalf("run %d: fingerprint %x != %x", i, got, want)
		}
	}
}
