package kmachine

import "fmt"

// Metrics aggregates the cost of a run. Rounds is the model's complexity
// measure; the byte/bit counters support the load-balancing (Lemma 1) and
// lower-bound (Theorem 5) experiments.
type Metrics struct {
	// Rounds is the number of communication rounds executed.
	Rounds int
	// Messages is the number of messages delivered.
	Messages int64
	// PayloadBytes is the total payload delivered (headers excluded).
	PayloadBytes int64
	// LinkBits[s][d] is the total bits transmitted on the directed link
	// s -> d (payload + overhead), excluding free self-delivery.
	LinkBits [][]int64
	// SentMsgs / RecvMsgs count messages per machine.
	SentMsgs, RecvMsgs []int64
	// MaxLinkBits is the maximum over directed links of LinkBits.
	MaxLinkBits int64
	// DroppedMessages / DroppedBytes count traffic addressed to machines
	// that had already halted, or still queued at termination. A correct
	// protocol leaves these at zero.
	DroppedMessages int
	DroppedBytes    int64
}

func newMetrics(k int) *Metrics {
	lb := make([][]int64, k)
	for i := range lb {
		lb[i] = make([]int64, k)
	}
	return &Metrics{
		LinkBits: lb,
		SentMsgs: make([]int64, k),
		RecvMsgs: make([]int64, k),
	}
}

// Snapshot returns a deep copy of the metrics with MaxLinkBits resolved,
// safe to retain after the run advances.
func (m *Metrics) Snapshot() Metrics {
	cp := *m
	cp.LinkBits = make([][]int64, len(m.LinkBits))
	for i, row := range m.LinkBits {
		cp.LinkBits[i] = append([]int64(nil), row...)
	}
	cp.SentMsgs = append([]int64(nil), m.SentMsgs...)
	cp.RecvMsgs = append([]int64(nil), m.RecvMsgs...)
	cp.MaxLinkBits = 0
	cp.finish()
	return cp
}

func (m *Metrics) finish() {
	for _, row := range m.LinkBits {
		for _, b := range row {
			if b > m.MaxLinkBits {
				m.MaxLinkBits = b
			}
		}
	}
}

// TotalBits returns the total bits transmitted across all links.
func (m *Metrics) TotalBits() int64 {
	var t int64
	for _, row := range m.LinkBits {
		for _, b := range row {
			t += b
		}
	}
	return t
}

// CutBits returns the bits that crossed the cut between machines with
// inA[i] true and the rest, in both directions. This is the quantity the
// Theorem 5 simulation argument charges to the two-party protocol.
func (m *Metrics) CutBits(inA []bool) int64 {
	var t int64
	for s, row := range m.LinkBits {
		for d, b := range row {
			if inA[s] != inA[d] {
				t += b
			}
		}
	}
	return t
}

// MeanLinkBits returns the average load over the k(k-1) directed links.
func (m *Metrics) MeanLinkBits() float64 {
	k := len(m.LinkBits)
	if k < 2 {
		return 0
	}
	return float64(m.TotalBits()) / float64(k*(k-1))
}

// String summarizes the metrics.
func (m *Metrics) String() string {
	return fmt.Sprintf("rounds=%d msgs=%d payload=%dB maxLink=%db dropped=%d",
		m.Rounds, m.Messages, m.PayloadBytes, m.MaxLinkBits, m.DroppedMessages)
}
