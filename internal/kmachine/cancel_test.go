package kmachine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count drops back to at most
// base (goleak-style: counts, with a deadline, instead of dumping stacks).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunContextCancelReleasesSteppingMachines: cancelling the context of
// a run whose machines are stepping forever must return ctx.Err() and
// leave no machine goroutine behind.
func TestRunContextCancelReleasesSteppingMachines(t *testing.T) {
	base := runtime.NumGoroutine()
	cl, err := New(Config{K: 4, BandwidthBits: 1024, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err = cl.RunContext(ctx, func(c *Ctx) error {
		for {
			c.Broadcast([]byte("spin"))
			c.Step()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitGoroutines(t, base)
}

// TestRunContextCancelWithParkedMachines: a cancelled run whose machines
// are all parked on external input must terminate, and the machines'
// goroutines must exit cleanly once they touch the cluster again — the
// abort path the resident substrate depends on.
func TestRunContextCancelWithParkedMachines(t *testing.T) {
	base := runtime.NumGoroutine()
	cl, err := New(Config{K: 3, BandwidthBits: 1024, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cl.RunContext(ctx, func(c *Ctx) error {
			c.Park()
			<-release // external input that never arrives before cancel
			c.Unpark()
			c.Step()
			return nil
		})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let every machine park
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return after cancel with all machines parked")
	}
	// Wake the parked handlers: their Unpark/Step must abort, not wedge.
	close(release)
	waitGoroutines(t, base)
}

// TestRunContextDeadline: a deadline behaves like a cancel.
func TestRunContextDeadline(t *testing.T) {
	cl, err := New(Config{K: 2, BandwidthBits: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = cl.RunContext(ctx, func(c *Ctx) error {
		for {
			c.Broadcast(make([]byte, 64))
			c.Step()
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestSnapshotDuringRun: Snapshot observes monotone round counts while the
// cluster runs, is consistent (deep-copied), and reports false once the
// run ends.
func TestSnapshotDuringRun(t *testing.T) {
	cl, err := New(Config{K: 2, BandwidthBits: 1024, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cl.Snapshot(); ok {
		t.Fatal("Snapshot before Run reported a live run")
	}
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	var res *Result
	go func() {
		res, _ = cl.Run(func(c *Ctx) error {
			for i := 0; i < 50; i++ {
				c.Send(1-c.ID(), []byte("x"))
				c.Step()
			}
			if c.ID() == 0 {
				close(started)
				<-release
			}
			return nil
		})
		close(done)
	}()
	<-started
	m1, ok := cl.Snapshot()
	if !ok {
		t.Fatal("Snapshot during run failed")
	}
	if m1.Rounds < 50 || m1.Messages == 0 {
		t.Fatalf("mid-run snapshot: %+v", m1)
	}
	close(release)
	<-done
	if m1.Rounds > res.Metrics.Rounds {
		t.Fatalf("snapshot rounds %d exceed final %d", m1.Rounds, res.Metrics.Rounds)
	}
	if _, ok := cl.Snapshot(); ok {
		t.Fatal("Snapshot after run reported a live run")
	}
}
