package kmachine

import (
	"math/rand"
	"reflect"
	"testing"

	"kmgraph/internal/graph"
)

// TestShardLoadMatchesRVP pins the bit-exactness contract: the shard
// loader must reproduce the in-memory random vertex partition exactly —
// same owned lists, same per-vertex adjacency, same order, same weights.
func TestShardLoadMatchesRVP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(300)
		maxM := n * (n - 1) / 2
		m := 0
		if maxM > 0 {
			m = rng.Intn(maxM/2 + 1)
		}
		g := graph.GNM(n, m, int64(trial))
		if trial%2 == 0 {
			g = graph.WithDistinctWeights(g, int64(trial))
		}
		k := 1 + rng.Intn(12)
		seed := uint64(trial) * 0x9e3779b97f4a7c15

		rvp := NewRVP(g, k, seed)
		sp, err := LoadShards(g.Source(), k, seed)
		if err != nil {
			t.Fatalf("trial %d: LoadShards: %v", trial, err)
		}
		if sp.N() != n || sp.M() != g.M() {
			t.Fatalf("trial %d: got n=%d m=%d, want n=%d m=%d", trial, sp.N(), sp.M(), n, g.M())
		}
		for i := 0; i < k; i++ {
			if !reflect.DeepEqual(rvp.Owned(i), sp.Owned(i)) {
				t.Fatalf("trial %d: machine %d owned lists differ", trial, i)
			}
			lv, sv := rvp.View(i), sp.View(i)
			for _, v := range rvp.Owned(i) {
				want := lv.Adj(v)
				got := sv.Adj(v)
				if len(want) == 0 && len(got) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d: machine %d vertex %d adjacency differs\n got %v\nwant %v",
						trial, i, v, got, want)
				}
			}
		}
		for v := 0; v < n; v++ {
			if rvp.Home(v) != sp.Home(v) {
				t.Fatalf("trial %d: home(%d) differs", trial, v)
			}
		}
	}
}

func TestShardLoadUnsortedSourceIsSorted(t *testing.T) {
	// Edges delivered in scrambled, non-canonical order must still land
	// as sorted rows.
	edges := []graph.Edge{
		{U: 9, V: 2, W: 5}, {U: 0, V: 9, W: 1}, {U: 5, V: 2, W: 3},
		{U: 2, V: 0, W: 7}, {U: 9, V: 5, W: 2},
	}
	sp, err := LoadShards(graph.NewSliceSource(10, edges), 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromEdges(10, edges)
	rvp := NewRVP(g, 3, 42)
	for i := 0; i < 3; i++ {
		lv, sv := rvp.View(i), sp.View(i)
		for _, v := range rvp.Owned(i) {
			if len(lv.Adj(v)) == 0 && len(sv.Adj(v)) == 0 {
				continue
			}
			if !reflect.DeepEqual(sv.Adj(v), lv.Adj(v)) {
				t.Fatalf("vertex %d adjacency differs: got %v want %v", v, sv.Adj(v), lv.Adj(v))
			}
		}
	}
}

func TestShardLoadRejectsBadStreams(t *testing.T) {
	for name, edges := range map[string][]graph.Edge{
		"self-loop":    {{U: 1, V: 1, W: 1}},
		"out-of-range": {{U: 1, V: 50, W: 1}},
		"negative":     {{U: -2, V: 1, W: 1}},
		"duplicate":    {{U: 1, V: 2, W: 1}, {U: 2, V: 1, W: 9}},
	} {
		if _, err := LoadShards(graph.NewSliceSource(10, edges), 4, 1); err == nil {
			t.Errorf("%s: loader accepted bad stream", name)
		}
	}
	if _, err := LoadShards(graph.NewSliceSource(10, nil), 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
}
