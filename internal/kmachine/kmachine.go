// Package kmachine implements the k-machine model of Klauck et al. (SODA
// 2015) as adopted by the paper (§1.1): k >= 2 machines, pairwise
// interconnected by bidirectional point-to-point links, computing in
// synchronous rounds with O(polylog n) bits of bandwidth per link per
// round. Local computation is free; the only measured cost is rounds.
//
// Each machine runs as a goroutine executing a Handler in SPMD style. A
// coordinator goroutine enforces the round barrier over channels: a machine
// ends its round by calling Ctx.Step, which submits its outgoing messages
// and blocks until the next round's deliveries arrive. Every directed link
// has a FIFO byte queue drained at BandwidthBits per round; a message is
// delivered in the round its last bit arrives, so oversized messages
// automatically cost multiple rounds, exactly as the model prescribes.
//
// The simulation is deterministic: machine code is deterministic given its
// inputs and per-machine seeded RNG, events are processed in machine-ID
// order, and deliveries are sorted by (source, send order).
package kmachine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"kmgraph/internal/hashing"
)

// Config parameterizes a cluster.
type Config struct {
	// K is the number of machines (>= 2, or 1 for degenerate tests).
	K int
	// BandwidthBits is the per-round bit budget of each directed link.
	// Use Bandwidth(n) for the standard polylog(n) setting.
	BandwidthBits int
	// MessageOverheadBits is added to every message's transmission cost,
	// modeling addressing/framing headers (Θ(log n) in the model).
	MessageOverheadBits int
	// Seed drives all per-machine private randomness.
	Seed int64
	// MaxRounds aborts runaway executions. 0 means the default cap.
	MaxRounds int
}

// Bandwidth returns the standard per-link budget used by the experiments:
// 16·ceil(log2 n)^2 bits per round, a concrete O(polylog n).
func Bandwidth(n int) int {
	l := 1
	for s := 1; s < n; s <<= 1 {
		l++
	}
	return 16 * l * l
}

const defaultMaxRounds = 30_000_000

// Message is a point-to-point message between machines.
type Message struct {
	Src, Dst int
	Data     []byte
}

// Handler is the per-machine program. It runs on every machine (SPMD);
// ctx.ID distinguishes them. Returning ends the machine's participation.
type Handler func(ctx *Ctx) error

// Cluster is a configured k-machine system; Run executes a Handler on it.
// A Cluster supports at most one Run at a time (the resident substrate
// keeps exactly one alive for its whole lifetime).
type Cluster struct {
	cfg Config

	mu      sync.Mutex
	evCh    chan event    // live run's event channel (nil before Run)
	runDone chan struct{} // closed when the coordinator exits
}

// New validates cfg and returns a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("kmachine: K = %d, need >= 1", cfg.K)
	}
	if cfg.BandwidthBits < 1 {
		return nil, fmt.Errorf("kmachine: BandwidthBits = %d, need >= 1", cfg.BandwidthBits)
	}
	if cfg.MessageOverheadBits < 0 {
		return nil, fmt.Errorf("kmachine: negative MessageOverheadBits")
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = defaultMaxRounds
	}
	return &Cluster{cfg: cfg}, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Result carries the run metrics and each machine's designated output
// variable o_i (§1.1), set via Ctx.SetOutput.
type Result struct {
	Metrics Metrics
	Outputs []any
}

// ErrMaxRounds is returned when the round cap is exceeded.
var ErrMaxRounds = errors.New("kmachine: exceeded MaxRounds")

type event struct {
	id     int
	outbox []Message
	done   bool
	park   bool
	unpark bool
	cancel bool         // injected by the RunContext watcher, not a machine
	snap   chan Metrics // metrics snapshot request (host side, free)
	err    error
	output any
}

type delivery struct {
	msgs  []Message
	abort bool
}

// Ctx is a machine's handle to the cluster, valid only inside its Handler.
type Ctx struct {
	id  int
	cfg Config
	rng *rand.Rand

	round  int
	outbox []Message
	evCh   chan<- event
	inCh   chan delivery
	stop   <-chan struct{} // closed when the coordinator exits
	output any
}

// ID returns this machine's identifier in [0, K).
func (c *Ctx) ID() int { return c.id }

// K returns the number of machines.
func (c *Ctx) K() int { return c.cfg.K }

// Round returns the number of completed rounds.
func (c *Ctx) Round() int { return c.round }

// BandwidthBits returns the per-link per-round bit budget.
func (c *Ctx) BandwidthBits() int { return c.cfg.BandwidthBits }

// Rand returns this machine's private source of randomness (§1.1: each
// machine has access to a private source of true random bits).
func (c *Ctx) Rand() *rand.Rand { return c.rng }

// SetOutput sets the machine's designated local output variable o_i.
func (c *Ctx) SetOutput(v any) { c.output = v }

// Send queues a message to machine dst for transmission starting next
// round. Sending to self is free local bookkeeping delivered next round.
func (c *Ctx) Send(dst int, data []byte) {
	if dst < 0 || dst >= c.cfg.K {
		panic(fmt.Sprintf("kmachine: send to invalid machine %d", dst))
	}
	c.outbox = append(c.outbox, Message{Src: c.id, Dst: dst, Data: data})
}

// Broadcast sends data to every other machine (K-1 messages).
func (c *Ctx) Broadcast(data []byte) {
	for d := 0; d < c.cfg.K; d++ {
		if d != c.id {
			c.Send(d, data)
		}
	}
}

type abortPanic struct{}

// submit sends an event to the coordinator, aborting the machine if the
// coordinator has already exited (a cancelled run must not wedge machines
// in barrier calls, whatever state they were in when the abort hit).
func (c *Ctx) submit(e event) {
	select {
	case c.evCh <- e:
	case <-c.stop:
		panic(abortPanic{})
	}
}

// Park withdraws this machine from the round barrier: the cluster keeps
// advancing rounds without it, and messages addressed to it are buffered
// for its next Step. Park lets a machine idle on external input (the
// dynamic subsystem's command channel) without stalling machines that are
// still draining in-flight deliveries — and, once every machine is parked,
// the cluster is quiescent and no rounds pass at all. Any Sends still
// queued (a collective can complete without a final Step when all its
// frames pre-arrived) are submitted with the park event, exactly as a
// Step or handler return would submit them. Call Unpark before
// communicating again.
func (c *Ctx) Park() {
	c.submit(event{id: c.id, outbox: c.outbox, park: true})
	c.outbox = nil
}

// Unpark re-enters the machine into the round barrier after a Park.
func (c *Ctx) Unpark() { c.submit(event{id: c.id, unpark: true}) }

// Step ends the current round and blocks until the coordinator advances
// the cluster. It returns the messages whose transmission completed this
// round, sorted by (Src, send order).
func (c *Ctx) Step() []Message {
	c.submit(event{id: c.id, outbox: c.outbox})
	c.outbox = nil
	var d delivery
	select {
	case d = <-c.inCh:
	case <-c.stop:
		// The coordinator exited without serving this step (aborted run).
		// Prefer a delivery that raced in just before the exit.
		select {
		case d = <-c.inCh:
		default:
			panic(abortPanic{})
		}
	}
	if d.abort {
		panic(abortPanic{})
	}
	c.round++
	return d.msgs
}

// Snapshot returns a copy of the live run's metrics, observed between
// rounds (the coordinator serves the request at its next event, so the
// copy is always internally consistent). It reports false when no run is
// active. Snapshot is free host-side observability: it does not perturb
// rounds, queues, or machine state.
func (c *Cluster) Snapshot() (Metrics, bool) {
	c.mu.Lock()
	evCh, runDone := c.evCh, c.runDone
	c.mu.Unlock()
	if evCh == nil {
		return Metrics{}, false
	}
	reply := make(chan Metrics, 1)
	select {
	case evCh <- event{snap: reply}:
	case <-runDone:
		return Metrics{}, false
	}
	select {
	case m := <-reply:
		return m, true
	case <-runDone:
		return Metrics{}, false
	}
}

// queued is an in-flight message with transmission progress.
type queued struct {
	msg      Message
	sentBits int
}

func (q *queued) totalBits(overhead int) int {
	b := 8*len(q.msg.Data) + overhead
	if b < 1 {
		b = 1
	}
	return b
}

// Run executes h on every machine and returns the metrics and outputs.
// It returns the first handler error, a panic converted to an error, or
// ErrMaxRounds.
func (c *Cluster) Run(h Handler) (*Result, error) {
	return c.RunContext(context.Background(), h)
}

// RunContext is Run with cancellation: when ctx is cancelled, the
// coordinator aborts the execution — machines blocked in Step are released
// with an abort delivery, machines parked on external input are abandoned
// (their goroutines exit the next time they touch the cluster), and
// RunContext returns ctx.Err().
func (c *Cluster) RunContext(ctx context.Context, h Handler) (*Result, error) {
	k := c.cfg.K
	evCh := make(chan event, k)
	runDone := make(chan struct{})
	c.mu.Lock()
	c.evCh, c.runDone = evCh, runDone
	c.mu.Unlock()
	defer close(runDone)

	if ctx.Done() != nil {
		watchStop := make(chan struct{})
		defer close(watchStop)
		go func() {
			select {
			case <-ctx.Done():
				select {
				case evCh <- event{cancel: true, err: ctx.Err()}:
				case <-runDone:
				}
			case <-watchStop:
			}
		}()
	}

	ctxs := make([]*Ctx, k)
	for i := 0; i < k; i++ {
		ctxs[i] = &Ctx{
			id:   i,
			cfg:  c.cfg,
			rng:  rand.New(rand.NewSource(int64(hashing.Hash2(uint64(c.cfg.Seed), uint64(i)+0xabcd)))),
			evCh: evCh,
			inCh: make(chan delivery, 1),
			stop: runDone,
		}
	}
	for i := 0; i < k; i++ {
		go func(ctx *Ctx) {
			var err error
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, isAbort := r.(abortPanic); isAbort {
							err = ErrMaxRounds
							return
						}
						err = fmt.Errorf("kmachine: machine %d panicked: %v", ctx.id, r)
					}
				}()
				err = h(ctx)
			}()
			select {
			case evCh <- event{id: ctx.id, outbox: ctx.outbox, done: true, err: err, output: ctx.output}:
			case <-runDone:
				// Coordinator already exited; nobody collects this output.
			}
		}(ctxs[i])
	}

	met := newMetrics(k)
	res := &Result{Outputs: make([]any, k)}
	queues := make([][]queued, k*k) // [src*k + dst]
	pendingInbox := make([][]Message, k)
	parked := make([]bool, k)
	nParked := 0
	var firstErr error
	running := k
	aborting := false

	anyQueued := func() bool {
		for _, q := range queues {
			if len(q) > 0 {
				return true
			}
		}
		return false
	}

	for running > 0 {
		// Barrier: one event per running non-parked machine. Park/unpark
		// events adjust the barrier size as they arrive.
		evs := make([]event, 0, running)
		need := running - nParked
		handle := func(e event) {
			switch {
			case e.cancel:
				aborting = true
				if firstErr == nil {
					firstErr = e.err
				}
			case e.snap != nil:
				e.snap <- met.Snapshot()
			case e.park:
				for _, m := range e.outbox {
					queues[m.Src*k+m.Dst] = append(queues[m.Src*k+m.Dst], queued{msg: m})
					met.SentMsgs[m.Src]++
				}
				parked[e.id] = true
				nParked++
			case e.unpark:
				parked[e.id] = false
				nParked--
			default:
				if e.done && parked[e.id] {
					// A machine may return while parked; un-mark it so the
					// barrier arithmetic stays consistent (the slot this
					// event fills is the one the un-marking adds).
					parked[e.id] = false
					nParked--
				}
				evs = append(evs, e)
			}
			need = running - nParked
		}
		if aborting && running == nParked {
			// Every survivor is parked on external input and will never
			// observe the abort; end the run rather than hang.
			if firstErr == nil {
				firstErr = ErrMaxRounds
			}
			break
		}
		if need == 0 && !anyQueued() {
			// Fully quiescent: every machine is parked and no bits are in
			// flight. Block (without burning rounds) until one re-enters.
			handle(<-evCh)
			if len(evs) == 0 {
				continue
			}
		}
		for len(evs) < need {
			handle(<-evCh)
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].id < evs[j].id })

		stepped := make([]bool, k)
		for _, e := range evs {
			for _, m := range e.outbox {
				queues[m.Src*k+m.Dst] = append(queues[m.Src*k+m.Dst], queued{msg: m})
				met.SentMsgs[m.Src]++
			}
			if e.done {
				running--
				res.Outputs[e.id] = e.output
				if e.err != nil && firstErr == nil && !errors.Is(e.err, ErrMaxRounds) {
					firstErr = e.err
				}
			} else {
				stepped[e.id] = true
			}
		}
		if running == 0 {
			break
		}
		if len(evs) == 0 && !anyQueued() {
			// Only park/unpark churn: nothing to transmit, no round passes.
			continue
		}

		// Transmit one round on every directed link.
		met.Rounds++
		inbox := make([][]Message, k)
		for d := 0; d < k; d++ {
			for s := 0; s < k; s++ {
				q := queues[s*k+d]
				if len(q) == 0 {
					continue
				}
				budget := c.cfg.BandwidthBits
				if s == d {
					budget = 1 << 30 // local delivery is free
				}
				i := 0
				for i < len(q) && budget > 0 {
					total := q[i].totalBits(c.cfg.MessageOverheadBits)
					rem := total - q[i].sentBits
					take := rem
					if take > budget {
						take = budget
					}
					q[i].sentBits += take
					budget -= take
					if s != d {
						met.LinkBits[s][d] += int64(take)
					}
					if q[i].sentBits == total {
						inbox[d] = append(inbox[d], q[i].msg)
						met.Messages++
						met.PayloadBytes += int64(len(q[i].msg.Data))
						met.RecvMsgs[d]++
						i++
					}
				}
				queues[s*k+d] = q[i:]
			}
		}

		if met.Rounds > c.cfg.MaxRounds {
			aborting = true
		}
		for id := 0; id < k; id++ {
			switch {
			case stepped[id]:
				msgs := inbox[id]
				if len(pendingInbox[id]) > 0 {
					msgs = append(pendingInbox[id], msgs...)
					pendingInbox[id] = nil
				}
				ctxs[id].inCh <- delivery{msgs: msgs, abort: aborting}
			case parked[id]:
				// Buffer for the machine's next Step after it unparks.
				pendingInbox[id] = append(pendingInbox[id], inbox[id]...)
			case len(inbox[id]) > 0:
				met.DroppedMessages += len(inbox[id])
				for _, m := range inbox[id] {
					met.DroppedBytes += int64(len(m.Data))
				}
			}
		}
		if aborting && firstErr == nil {
			firstErr = ErrMaxRounds
		}
	}

	// Undelivered queue remnants (including buffers for machines that
	// returned while their deliveries were parked) are protocol bugs;
	// surface them.
	for _, q := range queues {
		for _, qm := range q {
			met.DroppedMessages++
			met.DroppedBytes += int64(len(qm.msg.Data))
		}
	}
	for _, p := range pendingInbox {
		for _, m := range p {
			met.DroppedMessages++
			met.DroppedBytes += int64(len(m.Data))
		}
	}
	met.finish()
	res.Metrics = *met
	return res, firstErr
}
