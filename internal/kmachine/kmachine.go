// Package kmachine implements the k-machine model of Klauck et al. (SODA
// 2015) as adopted by the paper (§1.1): k >= 2 machines, pairwise
// interconnected by bidirectional point-to-point links, computing in
// synchronous rounds with O(polylog n) bits of bandwidth per link per
// round. Local computation is free; the only measured cost is rounds.
//
// Each machine runs as a goroutine executing a Handler in SPMD style. A
// coordinator goroutine enforces the round barrier over channels: a machine
// ends its round by calling Ctx.Step, which submits its outgoing messages
// and blocks until the next round's deliveries arrive. Every directed link
// has a FIFO byte queue drained at BandwidthBits per round; a message is
// delivered in the round its last bit arrives, so oversized messages
// automatically cost multiple rounds, exactly as the model prescribes.
//
// The link layer itself lives behind transport.Transport: the coordinator
// stages each barrier's outboxes and hands them to the transport, which
// runs the bandwidth simulation for the destinations this process hosts
// and synchronizes the barrier with any peer processes. The default
// backend (transport/local) hosts all k machines in this process and is
// the bit-exact reference; transport/tcp hosts a contiguous sub-range so
// a cluster spans OS processes connected by real sockets, with identical
// Metrics by construction.
//
// The simulation is deterministic: machine code is deterministic given its
// inputs and per-machine seeded RNG, events are processed in machine-ID
// order, and deliveries are sorted by (source, send order).
//
// The round engine is allocation-free in steady state: link queues, event
// slots, and delivery buffers are preallocated and recycled across rounds,
// and an active-link index (a per-destination bitmap of sources with bits
// in flight) makes quiescent links cost zero — sparse-communication phases
// run in O(active links) per round instead of O(k²). When many links are
// active and GOMAXPROCS allows, the per-destination transmit loop is
// sharded across a bounded set of workers (destinations are independent;
// global counters are merged in destination order after the join), with a
// serial fallback otherwise. Both paths produce bit-identical Metrics.
//
//km:roundpure
package kmachine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"kmgraph/internal/hashing"
	"kmgraph/internal/transport"
	"kmgraph/internal/transport/local"
	"kmgraph/internal/wire"
)

// Config parameterizes a cluster.
type Config struct {
	// K is the number of machines (>= 2, or 1 for degenerate tests).
	K int
	// BandwidthBits is the per-round bit budget of each directed link.
	// Use Bandwidth(n) for the standard polylog(n) setting.
	BandwidthBits int
	// MessageOverheadBits is added to every message's transmission cost,
	// modeling addressing/framing headers (Θ(log n) in the model).
	MessageOverheadBits int
	// Seed drives all per-machine private randomness.
	Seed int64
	// MaxRounds aborts runaway executions. 0 means the default cap.
	MaxRounds int
}

// Bandwidth returns the standard per-link budget used by the experiments:
// 16·ceil(log2 n)^2 bits per round, a concrete O(polylog n).
func Bandwidth(n int) int {
	l := 1
	for s := 1; s < n; s <<= 1 {
		l++
	}
	return 16 * l * l
}

const defaultMaxRounds = 30_000_000

// Message is a point-to-point message between machines. It is the
// transport layer's message type; the alias keeps every algorithm written
// against kmachine.Message compiling unchanged.
type Message = transport.Message

// Metrics aggregates the cost of a run (an alias for the transport
// layer's accounting type, which distributed runs merge across workers).
type Metrics = transport.Metrics

// TransportMaker builds the transport backend for one run: it receives
// the link parameters, the run's metrics sink, and the bound on sharded
// transmit workers. The default maker builds transport/local.
type TransportMaker func(p transport.Params, met *Metrics, workers int) (transport.Transport, error)

// Handler is the per-machine program. It runs on every machine (SPMD);
// ctx.ID distinguishes them. Returning ends the machine's participation.
type Handler func(ctx *Ctx) error

// Cluster is a configured k-machine system; Run executes a Handler on it.
// A Cluster supports at most one Run at a time (the resident substrate
// keeps exactly one alive for its whole lifetime).
type Cluster struct {
	cfg Config
	mk  TransportMaker

	mu      sync.Mutex
	evCh    chan event    // live run's event channel (nil before Run)
	runDone chan struct{} // closed when the coordinator exits
}

// New validates cfg and returns a cluster on the in-process reference
// transport.
func New(cfg Config) (*Cluster, error) {
	return NewWithTransport(cfg, nil)
}

// NewWithTransport is New with an explicit transport backend; a nil maker
// selects the in-process reference backend (transport/local). The maker
// is invoked once per Run with that run's metrics sink. A transport that
// hosts a sub-range [lo, hi) of the machines makes this cluster one
// participant of a multi-process run: only the hosted machines execute
// here, and Result.Outputs is filled for them alone.
func NewWithTransport(cfg Config, mk TransportMaker) (*Cluster, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("kmachine: K = %d, need >= 1", cfg.K)
	}
	if cfg.BandwidthBits < 1 {
		return nil, fmt.Errorf("kmachine: BandwidthBits = %d, need >= 1", cfg.BandwidthBits)
	}
	if cfg.MessageOverheadBits < 0 {
		return nil, fmt.Errorf("kmachine: negative MessageOverheadBits")
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = defaultMaxRounds
	}
	if mk == nil {
		mk = func(p transport.Params, met *Metrics, workers int) (transport.Transport, error) {
			return local.New(p, met, workers), nil
		}
	}
	return &Cluster{cfg: cfg, mk: mk}, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Result carries the run metrics and each machine's designated output
// variable o_i (§1.1), set via Ctx.SetOutput. In a multi-process run the
// Metrics are this process's partial accounting (its hosted destinations)
// and Outputs is filled only for hosted machines; transport.MergeMetrics
// reassembles the global view.
type Result struct {
	Metrics Metrics
	Outputs []any
}

// ErrMaxRounds is returned when the round cap is exceeded.
var ErrMaxRounds = errors.New("kmachine: exceeded MaxRounds")

type event struct {
	id     int
	outbox []Message
	done   bool
	park   bool
	unpark bool
	cancel bool         // injected by the RunContext watcher, not a machine
	snap   chan Metrics // metrics snapshot request (host side, free)
	err    error
	output any
}

type delivery struct {
	msgs []Message
	// spare is a drained outbox backing array handed back to the machine
	// for reuse (the coordinator is done reading it once the delivery that
	// carries it is sent).
	spare []Message
	abort bool
}

// Ctx is a machine's handle to the cluster, valid only inside its Handler.
type Ctx struct {
	id  int
	cfg Config
	rng *rand.Rand

	round  int
	outbox []Message
	evCh   chan<- event
	inCh   chan delivery
	stop   <-chan struct{} // closed when the coordinator exits
	output any
	arena  *wire.Arena
}

// ID returns this machine's identifier in [0, K).
func (c *Ctx) ID() int { return c.id }

// K returns the number of machines.
func (c *Ctx) K() int { return c.cfg.K }

// Round returns the number of completed rounds.
func (c *Ctx) Round() int { return c.round }

// BandwidthBits returns the per-link per-round bit budget.
func (c *Ctx) BandwidthBits() int { return c.cfg.BandwidthBits }

// Rand returns this machine's private source of randomness (§1.1: each
// machine has access to a private source of true random bits).
func (c *Ctx) Rand() *rand.Rand { return c.rng }

// Arena returns this machine's message arena: an append-style allocator for
// encoding outgoing message payloads without a heap allocation per message.
// Committed regions are immutable and survive as long as any receiver
// references them, so sending an arena-backed buffer is always safe. The
// arena is private to the machine's goroutine.
func (c *Ctx) Arena() *wire.Arena {
	if c.arena == nil {
		c.arena = wire.NewArena(0)
	}
	return c.arena
}

// SetOutput sets the machine's designated local output variable o_i.
func (c *Ctx) SetOutput(v any) { c.output = v }

// Send queues a message to machine dst for transmission starting next
// round. Sending to self is free local bookkeeping delivered next round.
// The engine retains data until delivery; callers must not mutate it after
// sending (encode into Arena buffers to reuse scratch space safely).
//
//km:hotpath
func (c *Ctx) Send(dst int, data []byte) {
	if dst < 0 || dst >= c.cfg.K {
		panic(fmt.Sprintf("kmachine: send to invalid machine %d", dst)) //kmvet:ignore panic path; unreachable for in-range destinations
	}
	c.outbox = append(c.outbox, Message{Src: c.id, Dst: dst, Data: data})
}

// Broadcast sends data to every other machine (K-1 messages).
//
//km:hotpath
func (c *Ctx) Broadcast(data []byte) {
	for d := 0; d < c.cfg.K; d++ {
		if d != c.id {
			c.Send(d, data)
		}
	}
}

type abortPanic struct{}

// submit sends an event to the coordinator, aborting the machine if the
// coordinator has already exited (a cancelled run must not wedge machines
// in barrier calls, whatever state they were in when the abort hit).
//
//km:hotpath
func (c *Ctx) submit(e event) {
	select {
	case c.evCh <- e:
	case <-c.stop:
		panic(abortPanic{})
	}
}

// Park withdraws this machine from the round barrier: the cluster keeps
// advancing rounds without it, and messages addressed to it are buffered
// for its next Step. Park lets a machine idle on external input (the
// dynamic subsystem's command channel) without stalling machines that are
// still draining in-flight deliveries — and, once every machine is parked,
// the cluster is quiescent and no rounds pass at all. Any Sends still
// queued (a collective can complete without a final Step when all its
// frames pre-arrived) are submitted with the park event, exactly as a
// Step or handler return would submit them. Call Unpark before
// communicating again. Parking requires the local transport (the hosted
// range must be the whole cluster).
func (c *Ctx) Park() {
	c.submit(event{id: c.id, outbox: c.outbox, park: true})
	c.outbox = nil
}

// Unpark re-enters the machine into the round barrier after a Park.
func (c *Ctx) Unpark() { c.submit(event{id: c.id, unpark: true}) }

// Step ends the current round and blocks until the coordinator advances
// the cluster. It returns the messages whose transmission completed this
// round, sorted by (Src, send order). The returned slice is reused by the
// engine: it stays valid until the second-next Step call; do not retain it
// (retaining the payload bytes of individual messages is fine).
//
//km:hotpath
func (c *Ctx) Step() []Message {
	c.submit(event{id: c.id, outbox: c.outbox})
	c.outbox = nil
	var d delivery
	select {
	case d = <-c.inCh:
	case <-c.stop:
		// The coordinator exited without serving this step (aborted run).
		// Prefer a delivery that raced in just before the exit.
		select {
		case d = <-c.inCh:
		default:
			panic(abortPanic{})
		}
	}
	if d.abort {
		panic(abortPanic{})
	}
	if d.spare != nil {
		c.outbox = d.spare
	}
	c.round++
	return d.msgs
}

// Snapshot returns a copy of the live run's metrics, observed between
// rounds (the coordinator serves the request at its next event, so the
// copy is always internally consistent). It reports false when no run is
// active. Snapshot is free host-side observability: it does not perturb
// rounds, queues, or machine state.
func (c *Cluster) Snapshot() (Metrics, bool) {
	c.mu.Lock()
	evCh, runDone := c.evCh, c.runDone
	c.mu.Unlock()
	if evCh == nil {
		return Metrics{}, false
	}
	reply := make(chan Metrics, 1)
	select {
	case evCh <- event{snap: reply}:
	case <-runDone:
		return Metrics{}, false
	}
	select {
	case m := <-reply:
		return m, true
	case <-runDone:
		return Metrics{}, false
	}
}

// coordinator is the per-run engine state above the transport: the event
// barrier slots for hosted machines plus the park/pending bookkeeping.
// Slot indices are hosted-relative (machine id minus lo).
type coordinator struct {
	lo, hi int

	evSlots []event // one slot per hosted machine; replaces sorting per barrier
	evHave  []bool
	evCount int

	stepped      []bool
	parked       []bool
	nParked      int
	running      int         // hosted machines still running
	pendingInbox [][]Message // buffered deliveries for parked machines
	spareOutbox  [][]Message // drained outbox backings awaiting hand-back
}

// Run executes h on every machine and returns the metrics and outputs.
// It returns the first handler error, a panic converted to an error, or
// ErrMaxRounds.
func (c *Cluster) Run(h Handler) (*Result, error) {
	return c.RunContext(context.Background(), h)
}

// RunContext is Run with cancellation: when ctx is cancelled, the
// coordinator aborts the execution — machines blocked in Step are released
// with an abort delivery, machines parked on external input are abandoned
// (their goroutines exit the next time they touch the cluster), and
// RunContext returns ctx.Err().
func (c *Cluster) RunContext(ctx context.Context, h Handler) (*Result, error) {
	k := c.cfg.K
	met := transport.NewMetrics(k)

	workers := runtime.GOMAXPROCS(0)
	if workers > transport.TransmitMaxWorkers {
		workers = transport.TransmitMaxWorkers
	}
	tr, err := c.mk(transport.Params{
		K:                   k,
		BandwidthBits:       c.cfg.BandwidthBits,
		MessageOverheadBits: c.cfg.MessageOverheadBits,
	}, met, workers)
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	lo, hi := tr.Hosted()
	if lo < 0 || hi > k || lo >= hi {
		return nil, fmt.Errorf("kmachine: transport hosts [%d,%d) of %d machines", lo, hi, k)
	}
	hosted := hi - lo

	evCh := make(chan event, hosted)
	runDone := make(chan struct{})
	c.mu.Lock()
	c.evCh, c.runDone = evCh, runDone
	c.mu.Unlock()
	defer close(runDone)

	if ctx.Done() != nil {
		watchStop := make(chan struct{})
		defer close(watchStop)
		go func() {
			select {
			case <-ctx.Done():
				select {
				case evCh <- event{cancel: true, err: ctx.Err()}:
				case <-runDone:
				}
			case <-watchStop:
			}
		}()
	}

	ctxs := make([]*Ctx, hosted)
	for i := 0; i < hosted; i++ {
		id := lo + i
		ctxs[i] = &Ctx{
			id:   id,
			cfg:  c.cfg,
			rng:  rand.New(rand.NewSource(int64(hashing.Hash2(uint64(c.cfg.Seed), uint64(id)+0xabcd)))),
			evCh: evCh,
			inCh: make(chan delivery, 1),
			stop: runDone,
		}
	}
	for i := 0; i < hosted; i++ {
		go func(ctx *Ctx) {
			var err error
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, isAbort := r.(abortPanic); isAbort {
							err = ErrMaxRounds
							return
						}
						err = fmt.Errorf("kmachine: machine %d panicked: %v", ctx.id, r)
					}
				}()
				err = h(ctx)
			}()
			select {
			case evCh <- event{id: ctx.id, outbox: ctx.outbox, done: true, err: err, output: ctx.output}:
			case <-runDone:
				// Coordinator already exited; nobody collects this output.
			}
		}(ctxs[i])
	}

	res := &Result{Outputs: make([]any, k)}
	co := &coordinator{
		lo:           lo,
		hi:           hi,
		evSlots:      make([]event, hosted),
		evHave:       make([]bool, hosted),
		stepped:      make([]bool, hosted),
		parked:       make([]bool, hosted),
		running:      hosted,
		pendingInbox: make([][]Message, hosted),
		spareOutbox:  make([][]Message, hosted),
	}
	var firstErr error
	aborting := false
	unilateral := false // abort not shared by peers (cancel / transport death)
	dead := false       // the transport failed: no more rounds, only drain
	globalRunning := k
	var in transport.RoundIn
	var out transport.RoundOut

	handle := func(e event) {
		switch {
		case e.cancel:
			aborting = true
			unilateral = true
			if firstErr == nil {
				firstErr = e.err
			}
		case e.snap != nil:
			e.snap <- met.Snapshot()
		case e.park:
			// Stage the park outbox immediately, exactly as a step would at
			// barrier end: the machine cannot submit again this barrier, so
			// its per-link send order is preserved.
			in.Msgs = append(in.Msgs, e.outbox...)
			co.spareOutbox[e.id-lo] = e.outbox[:0]
			co.parked[e.id-lo] = true
			co.nParked++
		case e.unpark:
			co.parked[e.id-lo] = false
			co.nParked--
		default:
			i := e.id - lo
			if e.done && co.parked[i] {
				// A machine may return while parked; un-mark it so the
				// barrier arithmetic stays consistent (the slot this
				// event fills is the one the un-marking adds).
				co.parked[i] = false
				co.nParked--
			}
			if !co.evHave[i] {
				co.evCount++
			}
			co.evSlots[i] = e
			co.evHave[i] = true
		}
	}

	for globalRunning > 0 {
		// Barrier: one event per running non-parked hosted machine.
		// Park/unpark events adjust the barrier size as they arrive.
		if (aborting || dead) && co.running == co.nParked && co.running > 0 {
			// Every hosted survivor is parked on external input and will
			// never observe the abort; end the run rather than hang.
			if firstErr == nil {
				firstErr = ErrMaxRounds
			}
			break
		}
		if co.running > 0 && co.running-co.nParked == 0 && !tr.Pending() && len(in.Msgs) == 0 {
			// Fully quiescent: every hosted machine is parked and no bits
			// are in flight. Block (without burning rounds) until one
			// re-enters. (Only the local backend parks, so quiescence here
			// is global quiescence.)
			handle(<-evCh)
			if co.evCount == 0 {
				continue
			}
		}
		for co.evCount < co.running-co.nParked {
			handle(<-evCh)
		}

		// Process the barrier's events in machine-ID order (they arrive at
		// most once per machine per barrier, so bucketing by ID replaces a
		// comparison sort).
		nEvents := co.evCount
		doneDelta := 0
		for i := 0; i < hosted; i++ {
			if !co.evHave[i] {
				continue
			}
			e := &co.evSlots[i]
			in.Msgs = append(in.Msgs, e.outbox...)
			if e.done {
				co.running--
				doneDelta++
				res.Outputs[e.id] = e.output
				if e.err != nil && firstErr == nil && !errors.Is(e.err, ErrMaxRounds) {
					firstErr = e.err
				}
			} else {
				co.spareOutbox[i] = e.outbox[:0]
				co.stepped[i] = true
			}
			*e = event{}
			co.evHave[i] = false
		}
		co.evCount = 0

		if dead {
			// The transport is gone: release stepped machines with an abort
			// delivery and drain until every hosted machine has returned.
			in.Msgs = in.Msgs[:0]
			for i := 0; i < hosted; i++ {
				if co.stepped[i] {
					co.stepped[i] = false
					ctxs[i].inCh <- delivery{abort: true}
				}
			}
			if co.running == 0 {
				break
			}
			continue
		}
		if unilateral && co.running == 0 && co.nParked == 0 && hosted < k {
			// This participant aborted on its own (cancellation) and has
			// fully drained; stop joining barriers (peers observe the link
			// closing and abort too). Shared aborts (MaxRounds) are hit by
			// every participant at the same round, so those keep joining
			// barriers and drain the whole cluster in lockstep.
			break
		}
		if nEvents == 0 && len(in.Msgs) == 0 && !tr.Pending() && hosted == k {
			// Only park/unpark churn: nothing to transmit, no round passes.
			// (A multi-process participant never takes this shortcut: even
			// with all its hosted machines done it must keep pacing the
			// shared barrier until the whole cluster's running count hits
			// zero, or its peers would starve.)
			continue
		}

		// Run the round: barrier with peers, one bandwidth quantum on
		// every active link.
		in.Events = nEvents
		in.DoneDelta = doneDelta
		if err := tr.Round(&in, &out); err != nil {
			dead = true
			aborting = true
			unilateral = true
			if firstErr == nil {
				firstErr = err
			}
			in.Msgs = in.Msgs[:0]
			for i := 0; i < hosted; i++ {
				if co.stepped[i] {
					co.stepped[i] = false
					ctxs[i].inCh <- delivery{abort: true}
				}
			}
			if co.running == 0 {
				break
			}
			continue
		}
		in.Msgs = in.Msgs[:0]
		globalRunning = out.Running
		if globalRunning == 0 {
			break
		}
		if !out.Advanced {
			continue
		}
		met.Rounds++

		if met.Rounds > c.cfg.MaxRounds {
			aborting = true
		}
		for i := 0; i < hosted; i++ {
			inbox := out.Inboxes[i]
			switch {
			case co.stepped[i]:
				msgs := inbox
				if len(co.pendingInbox[i]) > 0 {
					// Hand over the pending buffer (merged with this round's
					// deliveries); it now belongs to the machine.
					msgs = append(co.pendingInbox[i], msgs...)
					co.pendingInbox[i] = nil
				}
				co.stepped[i] = false
				ctxs[i].inCh <- delivery{msgs: msgs, spare: co.spareOutbox[i], abort: aborting}
				co.spareOutbox[i] = nil
			case co.parked[i]:
				// Buffer for the machine's next Step after it unparks.
				co.pendingInbox[i] = append(co.pendingInbox[i], inbox...)
			case len(inbox) > 0:
				met.DroppedMessages += len(inbox)
				for _, m := range inbox {
					met.DroppedBytes += int64(len(m.Data))
				}
			}
		}
		if aborting && firstErr == nil {
			firstErr = ErrMaxRounds
		}
	}

	// Undelivered queue remnants (including buffers for machines that
	// returned while their deliveries were parked) are protocol bugs;
	// surface them.
	rm, rb := tr.Remnants()
	met.DroppedMessages += rm
	met.DroppedBytes += rb
	for _, p := range co.pendingInbox {
		for _, m := range p {
			met.DroppedMessages++
			met.DroppedBytes += int64(len(m.Data))
		}
	}
	met.Finish()
	res.Metrics = *met
	return res, firstErr
}
