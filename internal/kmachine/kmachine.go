// Package kmachine implements the k-machine model of Klauck et al. (SODA
// 2015) as adopted by the paper (§1.1): k >= 2 machines, pairwise
// interconnected by bidirectional point-to-point links, computing in
// synchronous rounds with O(polylog n) bits of bandwidth per link per
// round. Local computation is free; the only measured cost is rounds.
//
// Each machine runs as a goroutine executing a Handler in SPMD style. A
// coordinator goroutine enforces the round barrier over channels: a machine
// ends its round by calling Ctx.Step, which submits its outgoing messages
// and blocks until the next round's deliveries arrive. Every directed link
// has a FIFO byte queue drained at BandwidthBits per round; a message is
// delivered in the round its last bit arrives, so oversized messages
// automatically cost multiple rounds, exactly as the model prescribes.
//
// The simulation is deterministic: machine code is deterministic given its
// inputs and per-machine seeded RNG, events are processed in machine-ID
// order, and deliveries are sorted by (source, send order).
//
// The round engine is allocation-free in steady state: link queues, event
// slots, and delivery buffers are preallocated and recycled across rounds,
// and an active-link index (a per-destination bitmap of sources with bits
// in flight) makes quiescent links cost zero — sparse-communication phases
// run in O(active links) per round instead of O(k²). When many links are
// active and GOMAXPROCS allows, the per-destination transmit loop is
// sharded across a bounded set of workers (destinations are independent;
// global counters are merged in destination order after the join), with a
// serial fallback otherwise. Both paths produce bit-identical Metrics.
package kmachine

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"kmgraph/internal/hashing"
	"kmgraph/internal/wire"
)

// Config parameterizes a cluster.
type Config struct {
	// K is the number of machines (>= 2, or 1 for degenerate tests).
	K int
	// BandwidthBits is the per-round bit budget of each directed link.
	// Use Bandwidth(n) for the standard polylog(n) setting.
	BandwidthBits int
	// MessageOverheadBits is added to every message's transmission cost,
	// modeling addressing/framing headers (Θ(log n) in the model).
	MessageOverheadBits int
	// Seed drives all per-machine private randomness.
	Seed int64
	// MaxRounds aborts runaway executions. 0 means the default cap.
	MaxRounds int
}

// Bandwidth returns the standard per-link budget used by the experiments:
// 16·ceil(log2 n)^2 bits per round, a concrete O(polylog n).
func Bandwidth(n int) int {
	l := 1
	for s := 1; s < n; s <<= 1 {
		l++
	}
	return 16 * l * l
}

const defaultMaxRounds = 30_000_000

// Message is a point-to-point message between machines.
type Message struct {
	Src, Dst int
	Data     []byte
}

// Handler is the per-machine program. It runs on every machine (SPMD);
// ctx.ID distinguishes them. Returning ends the machine's participation.
type Handler func(ctx *Ctx) error

// Cluster is a configured k-machine system; Run executes a Handler on it.
// A Cluster supports at most one Run at a time (the resident substrate
// keeps exactly one alive for its whole lifetime).
type Cluster struct {
	cfg Config

	mu      sync.Mutex
	evCh    chan event    // live run's event channel (nil before Run)
	runDone chan struct{} // closed when the coordinator exits
}

// New validates cfg and returns a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("kmachine: K = %d, need >= 1", cfg.K)
	}
	if cfg.BandwidthBits < 1 {
		return nil, fmt.Errorf("kmachine: BandwidthBits = %d, need >= 1", cfg.BandwidthBits)
	}
	if cfg.MessageOverheadBits < 0 {
		return nil, fmt.Errorf("kmachine: negative MessageOverheadBits")
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = defaultMaxRounds
	}
	return &Cluster{cfg: cfg}, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Result carries the run metrics and each machine's designated output
// variable o_i (§1.1), set via Ctx.SetOutput.
type Result struct {
	Metrics Metrics
	Outputs []any
}

// ErrMaxRounds is returned when the round cap is exceeded.
var ErrMaxRounds = errors.New("kmachine: exceeded MaxRounds")

type event struct {
	id     int
	outbox []Message
	done   bool
	park   bool
	unpark bool
	cancel bool         // injected by the RunContext watcher, not a machine
	snap   chan Metrics // metrics snapshot request (host side, free)
	err    error
	output any
}

type delivery struct {
	msgs []Message
	// spare is a drained outbox backing array handed back to the machine
	// for reuse (the coordinator is done reading it once the delivery that
	// carries it is sent).
	spare []Message
	abort bool
}

// Ctx is a machine's handle to the cluster, valid only inside its Handler.
type Ctx struct {
	id  int
	cfg Config
	rng *rand.Rand

	round  int
	outbox []Message
	evCh   chan<- event
	inCh   chan delivery
	stop   <-chan struct{} // closed when the coordinator exits
	output any
	arena  *wire.Arena
}

// ID returns this machine's identifier in [0, K).
func (c *Ctx) ID() int { return c.id }

// K returns the number of machines.
func (c *Ctx) K() int { return c.cfg.K }

// Round returns the number of completed rounds.
func (c *Ctx) Round() int { return c.round }

// BandwidthBits returns the per-link per-round bit budget.
func (c *Ctx) BandwidthBits() int { return c.cfg.BandwidthBits }

// Rand returns this machine's private source of randomness (§1.1: each
// machine has access to a private source of true random bits).
func (c *Ctx) Rand() *rand.Rand { return c.rng }

// Arena returns this machine's message arena: an append-style allocator for
// encoding outgoing message payloads without a heap allocation per message.
// Committed regions are immutable and survive as long as any receiver
// references them, so sending an arena-backed buffer is always safe. The
// arena is private to the machine's goroutine.
func (c *Ctx) Arena() *wire.Arena {
	if c.arena == nil {
		c.arena = wire.NewArena(0)
	}
	return c.arena
}

// SetOutput sets the machine's designated local output variable o_i.
func (c *Ctx) SetOutput(v any) { c.output = v }

// Send queues a message to machine dst for transmission starting next
// round. Sending to self is free local bookkeeping delivered next round.
// The engine retains data until delivery; callers must not mutate it after
// sending (encode into Arena buffers to reuse scratch space safely).
func (c *Ctx) Send(dst int, data []byte) {
	if dst < 0 || dst >= c.cfg.K {
		panic(fmt.Sprintf("kmachine: send to invalid machine %d", dst))
	}
	c.outbox = append(c.outbox, Message{Src: c.id, Dst: dst, Data: data})
}

// Broadcast sends data to every other machine (K-1 messages).
func (c *Ctx) Broadcast(data []byte) {
	for d := 0; d < c.cfg.K; d++ {
		if d != c.id {
			c.Send(d, data)
		}
	}
}

type abortPanic struct{}

// submit sends an event to the coordinator, aborting the machine if the
// coordinator has already exited (a cancelled run must not wedge machines
// in barrier calls, whatever state they were in when the abort hit).
func (c *Ctx) submit(e event) {
	select {
	case c.evCh <- e:
	case <-c.stop:
		panic(abortPanic{})
	}
}

// Park withdraws this machine from the round barrier: the cluster keeps
// advancing rounds without it, and messages addressed to it are buffered
// for its next Step. Park lets a machine idle on external input (the
// dynamic subsystem's command channel) without stalling machines that are
// still draining in-flight deliveries — and, once every machine is parked,
// the cluster is quiescent and no rounds pass at all. Any Sends still
// queued (a collective can complete without a final Step when all its
// frames pre-arrived) are submitted with the park event, exactly as a
// Step or handler return would submit them. Call Unpark before
// communicating again.
func (c *Ctx) Park() {
	c.submit(event{id: c.id, outbox: c.outbox, park: true})
	c.outbox = nil
}

// Unpark re-enters the machine into the round barrier after a Park.
func (c *Ctx) Unpark() { c.submit(event{id: c.id, unpark: true}) }

// Step ends the current round and blocks until the coordinator advances
// the cluster. It returns the messages whose transmission completed this
// round, sorted by (Src, send order). The returned slice is reused by the
// engine: it stays valid until the second-next Step call; do not retain it
// (retaining the payload bytes of individual messages is fine).
func (c *Ctx) Step() []Message {
	c.submit(event{id: c.id, outbox: c.outbox})
	c.outbox = nil
	var d delivery
	select {
	case d = <-c.inCh:
	case <-c.stop:
		// The coordinator exited without serving this step (aborted run).
		// Prefer a delivery that raced in just before the exit.
		select {
		case d = <-c.inCh:
		default:
			panic(abortPanic{})
		}
	}
	if d.abort {
		panic(abortPanic{})
	}
	if d.spare != nil {
		c.outbox = d.spare
	}
	c.round++
	return d.msgs
}

// Snapshot returns a copy of the live run's metrics, observed between
// rounds (the coordinator serves the request at its next event, so the
// copy is always internally consistent). It reports false when no run is
// active. Snapshot is free host-side observability: it does not perturb
// rounds, queues, or machine state.
func (c *Cluster) Snapshot() (Metrics, bool) {
	c.mu.Lock()
	evCh, runDone := c.evCh, c.runDone
	c.mu.Unlock()
	if evCh == nil {
		return Metrics{}, false
	}
	reply := make(chan Metrics, 1)
	select {
	case evCh <- event{snap: reply}:
	case <-runDone:
		return Metrics{}, false
	}
	select {
	case m := <-reply:
		return m, true
	case <-runDone:
		return Metrics{}, false
	}
}

// queued is an in-flight message with transmission progress.
type queued struct {
	msg      Message
	sentBits int
}

func (q *queued) totalBits(overhead int) int {
	b := 8*len(q.msg.Data) + overhead
	if b < 1 {
		b = 1
	}
	return b
}

// linkQueue is the FIFO of one directed link. head indexes the first
// undelivered message; the backing array is reset and reused whenever the
// queue fully drains, so steady-state traffic allocates nothing.
type linkQueue struct {
	items []queued
	head  int
}

func (q *linkQueue) empty() bool { return q.head == len(q.items) }

// Parallel-transmit tuning. The transmit loop shards per-destination work
// across workers only when enough links are active to amortize the join;
// small or sparse rounds take the serial path. Both paths are bit-exact.
// The vars are overridable by tests to force the parallel path.
var (
	transmitParallelMinLinks = 64
	transmitMaxWorkers       = 16
	transmitForceParallel    = false // tests only: take the sharded path always
)

// coordinator is the per-run engine state: link queues with their active
// index, the event barrier slots, and the recycled delivery buffers.
type coordinator struct {
	cfg Config
	k   int
	met *Metrics

	queues    []linkQueue // [src*k + dst]
	activeSrc [][]uint64  // [dst]: bitmap of sources with a non-empty queue
	dstActive []int       // [dst]: population count of activeSrc[dst]
	active    int         // total non-empty directed links

	evSlots []event // one slot per machine ID; replaces sorting per barrier
	evHave  []bool
	evCount int

	stepped      []bool
	parked       []bool
	nParked      int
	running      int
	pendingInbox [][]Message // buffered deliveries for parked machines
	spareOutbox  [][]Message // drained outbox backings awaiting hand-back

	// Per-destination delivery buffers, double-buffered so a slice handed
	// to a machine is not refilled until the machine has stepped again.
	inbox    [][]Message
	inboxBuf [][2][]Message
	inboxSel []int

	// Per-destination transmit results, merged deterministically (in
	// destination order) after a parallel round.
	dstMsgs    []int64
	dstBytes   []int64
	dstDrained []int32

	workers int
	next    atomic.Int64 // destination cursor for the sharded transmit
}

// enqueue appends m to its link queue, maintaining the active-link index.
// It is the single enqueue path for step, park, and handler-return
// outboxes, so their accounting can never drift.
func (c *coordinator) enqueue(m Message) {
	q := &c.queues[m.Src*c.k+m.Dst]
	if q.empty() {
		if q.head > 0 {
			q.items = q.items[:0]
			q.head = 0
		}
		c.activeSrc[m.Dst][m.Src>>6] |= 1 << uint(m.Src&63)
		c.dstActive[m.Dst]++
		c.active++
	}
	q.items = append(q.items, queued{msg: m})
	c.met.SentMsgs[m.Src]++
}

// transmitDst drains one round of bandwidth on every active link into
// destination d. It touches only d-indexed state (queues, bitmaps, inbox,
// counters) plus distinct LinkBits elements, so distinct destinations can
// run concurrently.
func (c *coordinator) transmitDst(d int) {
	buf := c.inbox[d]
	words := c.activeSrc[d]
	var delivered, drained int32
	var payload int64
	for wi, w := range words {
		for w != 0 {
			s := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			q := &c.queues[s*c.k+d]
			budget := c.cfg.BandwidthBits
			if s == d {
				budget = 1 << 30 // local delivery is free
			}
			i := q.head
			for i < len(q.items) && budget > 0 {
				qi := &q.items[i]
				total := qi.totalBits(c.cfg.MessageOverheadBits)
				rem := total - qi.sentBits
				take := rem
				if take > budget {
					take = budget
				}
				qi.sentBits += take
				budget -= take
				if s != d {
					c.met.LinkBits[s][d] += int64(take)
				}
				if qi.sentBits == total {
					buf = append(buf, qi.msg)
					delivered++
					payload += int64(len(qi.msg.Data))
					i++
				}
			}
			q.head = i
			if q.empty() {
				q.items = q.items[:0]
				q.head = 0
				words[wi] &^= 1 << uint(s&63)
				drained++
			}
		}
	}
	c.inbox[d] = buf
	c.inboxBuf[d][c.inboxSel[d]] = buf // retain grown capacity for reuse
	c.met.RecvMsgs[d] += int64(delivered)
	c.dstMsgs[d] = int64(delivered)
	c.dstBytes[d] = payload
	c.dstDrained[d] = drained
	c.dstActive[d] -= int(drained)
}

// transmitRound advances every active link by one round of bandwidth,
// choosing the sharded or serial path, and merges the per-destination
// counters into the global metrics in destination order.
func (c *coordinator) transmitRound() {
	k := c.k
	for d := 0; d < k; d++ {
		c.inbox[d] = c.inboxBuf[d][c.inboxSel[d]][:0]
		c.dstMsgs[d], c.dstBytes[d], c.dstDrained[d] = 0, 0, 0
	}
	if c.workers > 1 && (c.active >= transmitParallelMinLinks || transmitForceParallel) {
		c.next.Store(0)
		var wg sync.WaitGroup
		wg.Add(c.workers)
		for w := 0; w < c.workers; w++ {
			go func() {
				defer wg.Done()
				for {
					d := int(c.next.Add(1)) - 1
					if d >= k {
						return
					}
					if c.dstActive[d] > 0 {
						c.transmitDst(d)
					}
				}
			}()
		}
		wg.Wait()
	} else {
		for d := 0; d < k; d++ {
			if c.dstActive[d] > 0 {
				c.transmitDst(d)
			}
		}
	}
	for d := 0; d < k; d++ {
		c.met.Messages += c.dstMsgs[d]
		c.met.PayloadBytes += c.dstBytes[d]
		c.active -= int(c.dstDrained[d])
	}
}

// Run executes h on every machine and returns the metrics and outputs.
// It returns the first handler error, a panic converted to an error, or
// ErrMaxRounds.
func (c *Cluster) Run(h Handler) (*Result, error) {
	return c.RunContext(context.Background(), h)
}

// RunContext is Run with cancellation: when ctx is cancelled, the
// coordinator aborts the execution — machines blocked in Step are released
// with an abort delivery, machines parked on external input are abandoned
// (their goroutines exit the next time they touch the cluster), and
// RunContext returns ctx.Err().
func (c *Cluster) RunContext(ctx context.Context, h Handler) (*Result, error) {
	k := c.cfg.K
	evCh := make(chan event, k)
	runDone := make(chan struct{})
	c.mu.Lock()
	c.evCh, c.runDone = evCh, runDone
	c.mu.Unlock()
	defer close(runDone)

	if ctx.Done() != nil {
		watchStop := make(chan struct{})
		defer close(watchStop)
		go func() {
			select {
			case <-ctx.Done():
				select {
				case evCh <- event{cancel: true, err: ctx.Err()}:
				case <-runDone:
				}
			case <-watchStop:
			}
		}()
	}

	ctxs := make([]*Ctx, k)
	for i := 0; i < k; i++ {
		ctxs[i] = &Ctx{
			id:   i,
			cfg:  c.cfg,
			rng:  rand.New(rand.NewSource(int64(hashing.Hash2(uint64(c.cfg.Seed), uint64(i)+0xabcd)))),
			evCh: evCh,
			inCh: make(chan delivery, 1),
			stop: runDone,
		}
	}
	for i := 0; i < k; i++ {
		go func(ctx *Ctx) {
			var err error
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, isAbort := r.(abortPanic); isAbort {
							err = ErrMaxRounds
							return
						}
						err = fmt.Errorf("kmachine: machine %d panicked: %v", ctx.id, r)
					}
				}()
				err = h(ctx)
			}()
			select {
			case evCh <- event{id: ctx.id, outbox: ctx.outbox, done: true, err: err, output: ctx.output}:
			case <-runDone:
				// Coordinator already exited; nobody collects this output.
			}
		}(ctxs[i])
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > k {
		workers = k
	}
	if workers > transmitMaxWorkers {
		workers = transmitMaxWorkers
	}
	if transmitForceParallel && workers < 2 && k >= 2 {
		workers = 2
	}
	met := newMetrics(k)
	res := &Result{Outputs: make([]any, k)}
	co := &coordinator{
		cfg:          c.cfg,
		k:            k,
		met:          met,
		queues:       make([]linkQueue, k*k),
		activeSrc:    make([][]uint64, k),
		dstActive:    make([]int, k),
		evSlots:      make([]event, k),
		evHave:       make([]bool, k),
		stepped:      make([]bool, k),
		parked:       make([]bool, k),
		running:      k,
		pendingInbox: make([][]Message, k),
		spareOutbox:  make([][]Message, k),
		inbox:        make([][]Message, k),
		inboxBuf:     make([][2][]Message, k),
		inboxSel:     make([]int, k),
		dstMsgs:      make([]int64, k),
		dstBytes:     make([]int64, k),
		dstDrained:   make([]int32, k),
		workers:      workers,
	}
	words := (k + 63) >> 6
	for d := 0; d < k; d++ {
		co.activeSrc[d] = make([]uint64, words)
	}
	var firstErr error
	aborting := false

	handle := func(e event) {
		switch {
		case e.cancel:
			aborting = true
			if firstErr == nil {
				firstErr = e.err
			}
		case e.snap != nil:
			e.snap <- met.Snapshot()
		case e.park:
			for _, m := range e.outbox {
				co.enqueue(m)
			}
			co.spareOutbox[e.id] = e.outbox[:0]
			co.parked[e.id] = true
			co.nParked++
		case e.unpark:
			co.parked[e.id] = false
			co.nParked--
		default:
			if e.done && co.parked[e.id] {
				// A machine may return while parked; un-mark it so the
				// barrier arithmetic stays consistent (the slot this
				// event fills is the one the un-marking adds).
				co.parked[e.id] = false
				co.nParked--
			}
			if !co.evHave[e.id] {
				co.evCount++
			}
			co.evSlots[e.id] = e
			co.evHave[e.id] = true
		}
	}

	for co.running > 0 {
		// Barrier: one event per running non-parked machine. Park/unpark
		// events adjust the barrier size as they arrive.
		if aborting && co.running == co.nParked {
			// Every survivor is parked on external input and will never
			// observe the abort; end the run rather than hang.
			if firstErr == nil {
				firstErr = ErrMaxRounds
			}
			break
		}
		if co.running-co.nParked == 0 && co.active == 0 {
			// Fully quiescent: every machine is parked and no bits are in
			// flight. Block (without burning rounds) until one re-enters.
			handle(<-evCh)
			if co.evCount == 0 {
				continue
			}
		}
		for co.evCount < co.running-co.nParked {
			handle(<-evCh)
		}

		// Process the barrier's events in machine-ID order (they arrive at
		// most once per machine per barrier, so bucketing by ID replaces a
		// comparison sort).
		nEvents := co.evCount
		for id := 0; id < k; id++ {
			if !co.evHave[id] {
				continue
			}
			e := &co.evSlots[id]
			for _, m := range e.outbox {
				co.enqueue(m)
			}
			if e.done {
				co.running--
				res.Outputs[id] = e.output
				if e.err != nil && firstErr == nil && !errors.Is(e.err, ErrMaxRounds) {
					firstErr = e.err
				}
			} else {
				co.spareOutbox[id] = e.outbox[:0]
				co.stepped[id] = true
			}
			*e = event{}
			co.evHave[id] = false
		}
		co.evCount = 0
		if co.running == 0 {
			break
		}
		if nEvents == 0 && co.active == 0 {
			// Only park/unpark churn: nothing to transmit, no round passes.
			continue
		}

		// Transmit one round on every active directed link.
		met.Rounds++
		co.transmitRound()

		if met.Rounds > c.cfg.MaxRounds {
			aborting = true
		}
		for id := 0; id < k; id++ {
			switch {
			case co.stepped[id]:
				msgs := co.inbox[id]
				if len(co.pendingInbox[id]) > 0 {
					// Hand over the pending buffer (merged with this round's
					// deliveries); it now belongs to the machine.
					msgs = append(co.pendingInbox[id], msgs...)
					co.pendingInbox[id] = nil
				} else {
					// Hand over the inbox buffer; flip to the twin so this
					// one is not refilled before the machine steps again.
					co.inboxSel[id] ^= 1
				}
				co.stepped[id] = false
				ctxs[id].inCh <- delivery{msgs: msgs, spare: co.spareOutbox[id], abort: aborting}
				co.spareOutbox[id] = nil
			case co.parked[id]:
				// Buffer for the machine's next Step after it unparks.
				co.pendingInbox[id] = append(co.pendingInbox[id], co.inbox[id]...)
			case len(co.inbox[id]) > 0:
				met.DroppedMessages += len(co.inbox[id])
				for _, m := range co.inbox[id] {
					met.DroppedBytes += int64(len(m.Data))
				}
			}
		}
		if aborting && firstErr == nil {
			firstErr = ErrMaxRounds
		}
	}

	// Undelivered queue remnants (including buffers for machines that
	// returned while their deliveries were parked) are protocol bugs;
	// surface them.
	for i := range co.queues {
		q := &co.queues[i]
		for _, qm := range q.items[q.head:] {
			met.DroppedMessages++
			met.DroppedBytes += int64(len(qm.msg.Data))
		}
	}
	for _, p := range co.pendingInbox {
		for _, m := range p {
			met.DroppedMessages++
			met.DroppedBytes += int64(len(m.Data))
		}
	}
	met.finish()
	res.Metrics = *met
	return res, firstErr
}
