package kmachine

import (
	"testing"
	"testing/quick"

	"kmgraph/internal/graph"
)

// Property-based tests on engine invariants (testing/quick).

// TestQuickMessageConservation: every sent message is either delivered or
// counted as dropped; payload byte totals agree.
func TestQuickMessageConservation(t *testing.T) {
	f := func(plan []uint16, bw uint8) bool {
		k := 4
		bandwidth := int(bw)%2048 + 8
		c, err := New(Config{K: k, BandwidthBits: bandwidth, Seed: 3, MaxRounds: 100000})
		if err != nil {
			return false
		}
		if len(plan) > 80 {
			plan = plan[:80]
		}
		var sentMsgs int64
		var sentBytes int64
		res, err := c.Run(func(ctx *Ctx) error {
			// Each machine sends a deterministic slice of the plan, then
			// steps enough rounds for everything to drain.
			for i, p := range plan {
				if i%k != ctx.ID() {
					continue
				}
				dst := int(p) % k
				size := int(p)%97 + 1
				ctx.Send(dst, make([]byte, size))
			}
			// Worst case: all bytes on one link.
			total := 0
			for _, p := range plan {
				total += int(p)%97 + 1
			}
			rounds := (total*8+64*len(plan))/bandwidth + 2
			for r := 0; r < rounds; r++ {
				ctx.Step()
			}
			return nil
		})
		if err != nil {
			return false
		}
		for _, p := range plan {
			sentMsgs++
			sentBytes += int64(int(p)%97 + 1)
		}
		gotMsgs := res.Metrics.Messages + int64(res.Metrics.DroppedMessages)
		gotBytes := res.Metrics.PayloadBytes + res.Metrics.DroppedBytes
		return gotMsgs == sentMsgs && gotBytes == sentBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickLinkBitsMatchTraffic: total link bits equal payload bits plus
// per-message overhead for messages that crossed real links.
func TestQuickLinkBitsMatchTraffic(t *testing.T) {
	const overhead = 32
	f := func(sizes []uint8) bool {
		k := 3
		c, err := New(Config{K: k, BandwidthBits: 4096, MessageOverheadBits: overhead, Seed: 5})
		if err != nil {
			return false
		}
		if len(sizes) > 40 {
			sizes = sizes[:40]
		}
		res, err := c.Run(func(ctx *Ctx) error {
			if ctx.ID() == 0 {
				for _, s := range sizes {
					ctx.Send(1, make([]byte, int(s)+1))
				}
			}
			for r := 0; r < len(sizes)+4; r++ {
				ctx.Step()
			}
			return nil
		})
		if err != nil {
			return false
		}
		var want int64
		for _, s := range sizes {
			want += int64((int(s)+1)*8 + overhead)
		}
		return res.Metrics.LinkBits[0][1] == want && res.Metrics.TotalBits() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickRVPDeterministicAndTotal: the partition is a function of the
// seed and covers every vertex exactly once.
func TestQuickRVPTotal(t *testing.T) {
	f := func(n16 uint16, k8 uint8, seed uint64) bool {
		n := int(n16)%500 + 1
		k := int(k8)%16 + 1
		g := graph.NewBuilder(n).Build()
		p1 := NewRVP(g, k, seed)
		p2 := NewRVP(g, k, seed)
		total := 0
		for i := 0; i < k; i++ {
			total += len(p1.Owned(i))
			if len(p1.Owned(i)) != len(p2.Owned(i)) {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
