package kmachine

import (
	"fmt"

	"kmgraph/internal/graph"
	"kmgraph/internal/hashing"
)

// VertexPartition is the paper's random vertex partition (RVP, §1.1):
// every vertex is hashed to a uniformly random home machine, carrying its
// incident edge list with it. Because assignment is by hashing, every
// machine can evaluate Home(v) for any vertex ID locally — the property
// real systems obtain the same way and that the algorithms rely on.
type VertexPartition struct {
	g        *graph.Graph
	k        int
	seed     uint64
	explicit []int // non-nil for prescribed (non-hashed) assignments
	owned    [][]int
}

// NewRVP partitions g's vertices over k machines using the given shared
// seed.
func NewRVP(g *graph.Graph, k int, seed uint64) *VertexPartition {
	p := &VertexPartition{g: g, k: k, seed: seed, owned: make([][]int, k)}
	for v := 0; v < g.N(); v++ {
		h := p.Home(v)
		p.owned[h] = append(p.owned[h], v)
	}
	return p
}

// NewExplicitPartition builds a vertex partition with prescribed homes
// (homes[v] in [0, k)). Used by the lower-bound harness (§4), where vertex
// placement is dictated by the two-party reduction rather than by hashing;
// Home remains globally computable, as the simulation argument permits.
func NewExplicitPartition(g *graph.Graph, k int, homes []int) *VertexPartition {
	if len(homes) != g.N() {
		panic("kmachine: homes length mismatch")
	}
	p := &VertexPartition{g: g, k: k, explicit: append([]int(nil), homes...), owned: make([][]int, k)}
	for v, h := range p.explicit {
		if h < 0 || h >= k {
			panic("kmachine: home out of range")
		}
		p.owned[h] = append(p.owned[h], v)
	}
	return p
}

// Home returns the home machine of vertex v.
func (p *VertexPartition) Home(v int) int {
	if p.explicit != nil {
		return p.explicit[v]
	}
	return HomeOf(p.seed, p.k, v)
}

// HomeOf is the RVP home hash: the machine vertex v lands on under a
// given shared seed and machine count. Both the in-memory partition and
// the shard-direct loader route through it, which is what makes the two
// load paths produce bit-identical residencies.
func HomeOf(seed uint64, k, v int) int {
	return hashing.RangeOf(hashing.Hash2(seed^0x52d5, uint64(v)), k)
}

// K returns the machine count.
func (p *VertexPartition) K() int { return p.k }

// N returns the vertex count.
func (p *VertexPartition) N() int { return p.g.N() }

// Owned returns the vertices homed at machine i (sorted ascending).
func (p *VertexPartition) Owned(i int) []int { return p.owned[i] }

// MaxLoad returns the largest number of vertices on one machine (the RVP
// balance property says this is Θ̃(n/k) w.h.p.).
func (p *VertexPartition) MaxLoad() int {
	m := 0
	for _, o := range p.owned {
		if len(o) > m {
			m = len(o)
		}
	}
	return m
}

// View returns machine i's restricted view of the input. Handlers must
// access the graph only through views: a view exposes adjacency only for
// owned vertices, enforcing the model's locality.
func (p *VertexPartition) View(i int) *LocalView {
	return &LocalView{id: i, p: p}
}

// LocalView is the knowledge machine i starts with: its own vertices with
// their incident edges (including neighbor IDs and weights), plus the
// ability to hash any vertex ID to its home machine.
type LocalView struct {
	id int
	p  *VertexPartition
}

// ID returns the machine this view belongs to.
func (v *LocalView) ID() int { return v.id }

// N returns the number of vertices of the input graph (public knowledge).
func (v *LocalView) N() int { return v.p.g.N() }

// K returns the number of machines.
func (v *LocalView) K() int { return v.p.k }

// Owned returns this machine's vertices.
func (v *LocalView) Owned() []int { return v.p.owned[v.id] }

// Home returns the home machine of any vertex (computable by hashing).
func (v *LocalView) Home(x int) int { return v.p.Home(x) }

// Adj returns the adjacency list of an owned vertex. Accessing a vertex
// homed elsewhere panics: that would violate the model.
func (v *LocalView) Adj(u int) []graph.Half {
	if v.p.Home(u) != v.id {
		panic(fmt.Sprintf("kmachine: machine %d accessed non-local vertex %d (home %d)",
			v.id, u, v.p.Home(u)))
	}
	return v.p.g.Adj(u)
}

// Degree returns the degree of an owned vertex.
func (v *LocalView) Degree(u int) int { return len(v.Adj(u)) }

// EdgePartition is the random edge partition (REP, §1.3): each edge is
// assigned to a uniformly random machine, independently.
type EdgePartition struct {
	g     *graph.Graph
	k     int
	seed  uint64
	owned [][]graph.Edge
}

// NewREP partitions g's edges over k machines.
func NewREP(g *graph.Graph, k int, seed uint64) *EdgePartition {
	p := &EdgePartition{g: g, k: k, seed: seed, owned: make([][]graph.Edge, k)}
	for _, e := range g.Edges() {
		h := p.HomeEdge(e)
		p.owned[h] = append(p.owned[h], e)
	}
	return p
}

// HomeEdge returns the home machine of edge e.
func (p *EdgePartition) HomeEdge(e graph.Edge) int {
	return hashing.RangeOf(hashing.Hash2(p.seed^0xeed9e, graph.EdgeID(e.U, e.V, p.g.N())), p.k)
}

// K returns the machine count.
func (p *EdgePartition) K() int { return p.k }

// N returns the vertex count.
func (p *EdgePartition) N() int { return p.g.N() }

// OwnedEdges returns the edges homed at machine i.
func (p *EdgePartition) OwnedEdges(i int) []graph.Edge { return p.owned[i] }

// MaxLoad returns the largest number of edges on one machine.
func (p *EdgePartition) MaxLoad() int {
	m := 0
	for _, o := range p.owned {
		if len(o) > m {
			m = len(o)
		}
	}
	return m
}
