// Package verify implements the paper's graph verification problems
// (§3.3, Theorem 4), each as a reduction to one or two runs of the fast
// connectivity algorithm, all in Õ(n/k²) rounds:
//
//   - spanning connected subgraph (SCS)
//   - cut verification
//   - s-t connectivity
//   - edge on all paths
//   - s-t cut verification
//   - bipartiteness (via the bipartite double cover, following AGM §3.3)
//   - cycle containment
//   - e-cycle containment
//
// Subgraphs are presented as edge sets; filtering is local knowledge in
// the model (every machine knows which of its vertices' incident edges are
// in H), so running connectivity on the filtered graph under the same
// partition is the faithful protocol.
package verify

import (
	"fmt"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
	"kmgraph/internal/kmachine"
)

// Outcome reports a verification verdict and its cost.
type Outcome struct {
	// Holds is the verification verdict.
	Holds bool
	// Runs is the number of connectivity executions used.
	Runs int
	// Rounds is the total k-machine rounds across executions.
	Rounds int
	// Metrics aggregates the executions' cost.
	Metrics kmachine.Metrics
}

type runner struct {
	cfg core.Config
	out Outcome
}

func (r *runner) components(g *graph.Graph, tweak int64) (int, *core.Result, error) {
	cfg := r.cfg
	cfg.Seed += tweak
	res, err := core.Run(g, cfg)
	if err != nil {
		return 0, nil, err
	}
	r.out.Runs++
	r.out.Rounds += res.Metrics.Rounds
	r.out.Metrics.Rounds += res.Metrics.Rounds
	r.out.Metrics.Messages += res.Metrics.Messages
	r.out.Metrics.PayloadBytes += res.Metrics.PayloadBytes
	return res.Components, res, nil
}

func subgraph(g *graph.Graph, edges []graph.Edge) *graph.Graph {
	keep := make(map[uint64]bool, len(edges))
	for _, e := range edges {
		e = e.Canon()
		keep[graph.EdgeID(e.U, e.V, g.N())] = true
	}
	return g.Filter(func(e graph.Edge) bool { return keep[graph.EdgeID(e.U, e.V, g.N())] })
}

// SpanningConnectedSubgraph verifies whether the subgraph H of G (given as
// an edge set over G's vertices) spans G and is connected.
func SpanningConnectedSubgraph(g *graph.Graph, h []graph.Edge, cfg core.Config) (*Outcome, error) {
	r := &runner{cfg: cfg}
	cc, _, err := r.components(subgraph(g, h), 1)
	if err != nil {
		return nil, err
	}
	r.out.Holds = cc == 1 || g.N() <= 1
	return &r.out, nil
}

// Cut verifies whether the given edge set is a cut of G: removing it must
// increase the number of connected components.
func Cut(g *graph.Graph, cut []graph.Edge, cfg core.Config) (*Outcome, error) {
	r := &runner{cfg: cfg}
	before, _, err := r.components(g, 1)
	if err != nil {
		return nil, err
	}
	after, _, err := r.components(g.RemoveEdges(cut), 2)
	if err != nil {
		return nil, err
	}
	r.out.Holds = after > before
	return &r.out, nil
}

// STConnectivity verifies whether s and t are in the same connected
// component of G.
func STConnectivity(g *graph.Graph, s, t int, cfg core.Config) (*Outcome, error) {
	if s < 0 || t < 0 || s >= g.N() || t >= g.N() {
		return nil, fmt.Errorf("verify: s/t out of range")
	}
	r := &runner{cfg: cfg}
	_, res, err := r.components(g, 1)
	if err != nil {
		return nil, err
	}
	r.out.Holds = res.Labels[s] == res.Labels[t]
	return &r.out, nil
}

// EdgeOnAllPaths verifies whether edge e lies on every path between u and
// v: true iff u and v are disconnected in G \ {e} (§3.3).
func EdgeOnAllPaths(g *graph.Graph, u, v int, e graph.Edge, cfg core.Config) (*Outcome, error) {
	out, err := STConnectivity(g.RemoveEdges([]graph.Edge{e}), u, v, cfg)
	if err != nil {
		return nil, err
	}
	out.Holds = !out.Holds
	return out, nil
}

// STCut verifies whether the given edge set is an s-t cut: removing it
// must disconnect s from t.
func STCut(g *graph.Graph, s, t int, cut []graph.Edge, cfg core.Config) (*Outcome, error) {
	out, err := STConnectivity(g.RemoveEdges(cut), s, t, cfg)
	if err != nil {
		return nil, err
	}
	out.Holds = !out.Holds
	return out, nil
}

// Bipartiteness verifies whether G is bipartite using the double cover
// reduction: G is bipartite iff its bipartite double cover has exactly
// twice as many connected components as G.
func Bipartiteness(g *graph.Graph, cfg core.Config) (*Outcome, error) {
	r := &runner{cfg: cfg}
	ccG, _, err := r.components(g, 1)
	if err != nil {
		return nil, err
	}
	ccD, _, err := r.components(g.DoubleCover(), 2)
	if err != nil {
		return nil, err
	}
	r.out.Holds = ccD == 2*ccG
	return &r.out, nil
}

// CycleContainment verifies whether G contains any cycle:
// m > n - #components.
func CycleContainment(g *graph.Graph, cfg core.Config) (*Outcome, error) {
	r := &runner{cfg: cfg}
	cc, _, err := r.components(g, 1)
	if err != nil {
		return nil, err
	}
	r.out.Holds = g.M() > g.N()-cc
	return &r.out, nil
}

// ECycleContainment verifies whether edge e lies on some cycle of G:
// true iff its endpoints remain connected in G \ {e}.
func ECycleContainment(g *graph.Graph, e graph.Edge, cfg core.Config) (*Outcome, error) {
	e = e.Canon()
	if !g.HasEdge(e.U, e.V) {
		return nil, fmt.Errorf("verify: edge (%d,%d) not in graph", e.U, e.V)
	}
	return STConnectivity(g.RemoveEdges([]graph.Edge{e}), e.U, e.V, cfg)
}
