package verify

import (
	"testing"

	"kmgraph/internal/core"
	"kmgraph/internal/graph"
)

var cfg = core.Config{K: 4, Seed: 5}

func TestSpanningConnectedSubgraph(t *testing.T) {
	g := graph.RandomConnected(80, 200, 1)
	tree, _ := graph.KruskalMST(g)

	out, err := SpanningConnectedSubgraph(g, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Holds {
		t.Error("spanning tree should verify as SCS")
	}
	// Remove one tree edge: no longer spanning connected.
	out, err = SpanningConnectedSubgraph(g, tree[1:], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Holds {
		t.Error("tree minus an edge is not connected")
	}
	// The full graph is an SCS of itself (when connected).
	out, err = SpanningConnectedSubgraph(g, g.Edges(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Holds {
		t.Error("G should be an SCS of itself")
	}
	// Empty subgraph of a >1 vertex graph is not.
	out, err = SpanningConnectedSubgraph(g, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Holds {
		t.Error("empty subgraph should fail")
	}
}

func TestCutVerification(t *testing.T) {
	g := graph.TwoCliquesBridged(10, 2, 3)
	// The two bridge edges form a cut.
	var bridges []graph.Edge
	for _, e := range g.Edges() {
		if (e.U < 10) != (e.V < 10) {
			bridges = append(bridges, e)
		}
	}
	if len(bridges) != 2 {
		t.Fatalf("expected 2 bridges, got %d", len(bridges))
	}
	out, err := Cut(g, bridges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Holds {
		t.Error("bridges form a cut")
	}
	if out.Runs != 2 {
		t.Errorf("runs = %d, want 2", out.Runs)
	}
	// One bridge alone is not a cut.
	out, err = Cut(g, bridges[:1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Holds {
		t.Error("single bridge is not a cut here")
	}
}

func TestSTConnectivity(t *testing.T) {
	g := graph.DisjointComponents(60, 2, 0.5, 7)
	labels, _ := graph.Components(g)
	var s, tt int
	sameFound, diffFound := false, false
	for v := 1; v < g.N(); v++ {
		if labels[v] == labels[0] && !sameFound {
			s = v
			sameFound = true
		}
		if labels[v] != labels[0] && !diffFound {
			tt = v
			diffFound = true
		}
	}
	if !sameFound || !diffFound {
		t.Skip("degenerate component split")
	}
	out, err := STConnectivity(g, 0, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Holds {
		t.Error("same-component pair should connect")
	}
	out, err = STConnectivity(g, 0, tt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Holds {
		t.Error("cross-component pair should not connect")
	}
	if _, err := STConnectivity(g, -1, 5, cfg); err == nil {
		t.Error("out of range should error")
	}
}

func TestEdgeOnAllPaths(t *testing.T) {
	// On a path graph, every edge lies on all paths between the ends.
	g := graph.Path(30)
	out, err := EdgeOnAllPaths(g, 0, 29, graph.Edge{U: 10, V: 11}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Holds {
		t.Error("path edge should be on all paths")
	}
	// On a cycle, no single edge is on all paths.
	c := graph.Cycle(30)
	out, err = EdgeOnAllPaths(c, 0, 15, graph.Edge{U: 0, V: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Holds {
		t.Error("cycle edge is never on all paths")
	}
}

func TestSTCut(t *testing.T) {
	g := graph.TwoCliquesBridged(8, 1, 9)
	var bridge graph.Edge
	for _, e := range g.Edges() {
		if (e.U < 8) != (e.V < 8) {
			bridge = e
		}
	}
	out, err := STCut(g, 0, 15, []graph.Edge{bridge}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Holds {
		t.Error("bridge is an s-t cut across the cliques")
	}
	out, err = STCut(g, 0, 7, []graph.Edge{bridge}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Holds {
		t.Error("bridge does not separate same-clique vertices")
	}
}

func TestBipartiteness(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"even-cycle", graph.Cycle(20), true},
		{"odd-cycle", graph.Cycle(21), false},
		{"grid", graph.Grid(5, 6), true},
		{"complete", graph.Complete(8), false},
		{"random-bipartite", graph.RandomBipartite(20, 25, 0.2, 3), true},
		{"tree", graph.RandomTree(50, 4), true},
		{"edgeless", graph.NewBuilder(10).Build(), true},
		{"two-odd-cycles", graph.DisjointComponents(9, 9, 0, 1), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := Bipartiteness(tc.g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if out.Holds != tc.want {
				t.Errorf("bipartite = %v, want %v (oracle %v)",
					out.Holds, tc.want, graph.IsBipartite(tc.g))
			}
		})
	}
}

func TestCycleContainment(t *testing.T) {
	if out, _ := CycleContainment(graph.RandomTree(40, 5), cfg); out.Holds {
		t.Error("tree has no cycle")
	}
	if out, _ := CycleContainment(graph.Cycle(12), cfg); !out.Holds {
		t.Error("cycle graph has a cycle")
	}
	forest := graph.DisjointComponents(40, 4, 0, 6)
	if out, _ := CycleContainment(forest, cfg); out.Holds {
		t.Error("forest has no cycle")
	}
}

func TestECycleContainment(t *testing.T) {
	g := graph.Lollipop(6, 4)
	// Clique edges are on cycles; the tail edges are bridges.
	out, err := ECycleContainment(g, graph.Edge{U: 1, V: 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Holds {
		t.Error("clique edge lies on a cycle")
	}
	out, err = ECycleContainment(g, graph.Edge{U: 6, V: 7}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Holds {
		t.Error("tail edge is a bridge")
	}
	if _, err := ECycleContainment(g, graph.Edge{U: 0, V: 9}, cfg); err == nil {
		t.Error("non-edge should error")
	}
}

func TestOutcomeAccounting(t *testing.T) {
	g := graph.Cycle(30)
	out, err := Bipartiteness(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Runs != 2 || out.Rounds <= 0 {
		t.Errorf("runs=%d rounds=%d", out.Runs, out.Rounds)
	}
}

func TestVerifiersMatchOraclesRandomized(t *testing.T) {
	// Randomized cross-validation of the reductions on mixed graphs.
	for seed := int64(0); seed < 6; seed++ {
		g := graph.GNM(60, 90+int(seed)*20, seed)
		out, err := Bipartiteness(g, core.Config{K: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if out.Holds != graph.IsBipartite(g) {
			t.Errorf("seed %d: bipartite mismatch", seed)
		}
		cyc, err := CycleContainment(g, core.Config{K: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if cyc.Holds != graph.HasCycle(g) {
			t.Errorf("seed %d: cycle mismatch", seed)
		}
	}
}
