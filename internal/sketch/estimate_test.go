package sketch

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"kmgraph/internal/hashing"
)

func TestSupportSizeZero(t *testing.T) {
	s := New(DefaultParams(100), 1)
	if got := s.SupportSize(); got != 0 {
		t.Errorf("zero sketch estimate = %v", got)
	}
}

func TestSupportSizeOrdersOfMagnitude(t *testing.T) {
	// The median estimate over seeds should be within a small constant
	// factor of the truth across several orders of magnitude (the
	// guarantee is constant-factor w.h.p., so the median is the right
	// summary; the mean would be tail-dominated).
	p := DefaultParams(4000)
	for _, support := range []int{1, 8, 64, 512, 4096} {
		const seeds = 31
		ests := make([]float64, 0, seeds)
		for seed := uint64(0); seed < seeds; seed++ {
			s := New(p, seed*977+3)
			for i := 0; i < support; i++ {
				id := hashing.Hash3(seed, 0xe57, uint64(i)) % (4000 * 4000)
				s.AddItem(id, 1)
			}
			ests = append(ests, s.SupportSize())
		}
		sort.Float64s(ests)
		median := ests[len(ests)/2]
		ratio := median / float64(support)
		if ratio < 1.0/4 || ratio > 4 {
			t.Errorf("support %d: median estimate %.1f (ratio %.2f) outside [1/4, 4]",
				support, median, ratio)
		}
	}
}

func TestSupportSizeMonotoneInExpectation(t *testing.T) {
	p := DefaultParams(1000)
	avg := func(support int) float64 {
		var sum float64
		for seed := uint64(0); seed < 40; seed++ {
			s := New(p, seed*31+7)
			for i := 0; i < support; i++ {
				s.AddItem(hashing.Hash3(seed, 9, uint64(i))%(1000*1000), 1)
			}
			sum += s.SupportSize()
		}
		return sum / 40
	}
	small, big := avg(4), avg(400)
	if big <= small {
		t.Errorf("estimate not increasing: %v vs %v", small, big)
	}
}

// Property-based tests on the sketch algebra (testing/quick).

func TestQuickAddCommutative(t *testing.T) {
	p := Params{N: 256, Levels: 10, Buckets: 4, Reps: 2}
	f := func(idsA, idsB []uint16, seed uint16) bool {
		sd := uint64(seed)
		ab := New(p, sd)
		ba := New(p, sd)
		a1, b1 := New(p, sd), New(p, sd)
		for _, id := range idsA {
			a1.AddItem(uint64(id)%(256*256), 1)
		}
		for _, id := range idsB {
			b1.AddItem(uint64(id)%(256*256), -1)
		}
		// ab = a + b ; ba = b + a
		if err := ab.Add(a1); err != nil {
			return false
		}
		if err := ab.Add(b1); err != nil {
			return false
		}
		if err := ba.Add(b1); err != nil {
			return false
		}
		if err := ba.Add(a1); err != nil {
			return false
		}
		for i := range ab.cells {
			if ab.cells[i] != ba.cells[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickInverseCancels(t *testing.T) {
	p := Params{N: 256, Levels: 10, Buckets: 4, Reps: 2}
	f := func(ids []uint16, seed uint16) bool {
		s := New(p, uint64(seed))
		for _, id := range ids {
			s.AddItem(uint64(id)%(256*256), 1)
		}
		for _, id := range ids {
			s.AddItem(uint64(id)%(256*256), -1)
		}
		return s.IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEncodeDecodeIdentity(t *testing.T) {
	p := Params{N: 256, Levels: 10, Buckets: 4, Reps: 2}
	f := func(ids []uint16, signs []bool, seed uint16) bool {
		s := New(p, uint64(seed))
		for i, id := range ids {
			sign := 1
			if i < len(signs) && signs[i] {
				sign = -1
			}
			s.AddItem(uint64(id)%(256*256), sign)
		}
		d, err := Decode(p, uint64(seed), s.EncodeTo(nil))
		if err != nil {
			return false
		}
		for i := range s.cells {
			if s.cells[i] != d.cells[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSampleSoundness(t *testing.T) {
	// Whatever Sample returns on a nonzero multiset-of-±1 vector must be
	// an id that was inserted with nonzero net count and the correct sign.
	p := Params{N: 512, Levels: 12, Buckets: 6, Reps: 2}
	f := func(ids []uint16, seed uint16) bool {
		s := New(p, uint64(seed)+1)
		net := map[uint64]int{}
		for _, id := range ids {
			slot := uint64(id) % (512 * 512)
			s.AddItem(slot, 1)
			net[slot]++
		}
		id, sign, st := s.Sample()
		if st != Sampled {
			return true // Empty or Failed: soundness not at issue
		}
		return net[id] > 0 && sign == 1 || (net[id] < 0 && sign == -1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSupportSizeLogSanity(t *testing.T) {
	// The estimate's log should be within ~2 of the true log for a large
	// support (tight version of the order-of-magnitude test).
	p := DefaultParams(4000)
	var sum float64
	for seed := uint64(0); seed < 50; seed++ {
		s := New(p, seed*13+1)
		for i := 0; i < 1024; i++ {
			s.AddItem(hashing.Hash3(seed, 2, uint64(i))%(4000*4000), 1)
		}
		sum += math.Log2(s.SupportSize() + 1)
	}
	mean := sum / 50
	if math.Abs(mean-10) > 2 {
		t.Errorf("mean log2 estimate %.2f, want ~10", mean)
	}
}
