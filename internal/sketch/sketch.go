// Package sketch implements the random linear graph sketches of paper §2.3:
// AGM-style l0-samplers over edge-incidence vectors.
//
// For a vertex u of an n-vertex graph, the incidence vector a_u over the
// (n choose 2) edge slots has a_u[(x,y)] = +1 if u = x < y and the edge
// exists, -1 if x < y = u, and 0 otherwise. A sketch s_u is a small linear
// projection of a_u from which one nonzero coordinate — one incident edge —
// can be recovered. Linearity is the crucial property: s_u + s_v is a valid
// sketch of a_u + a_v, in which the slot of edge (u,v) has cancelled to
// zero. Summing the sketches of a whole component therefore yields a sketch
// of its *outgoing* edges only, which is how the connectivity algorithm
// samples inter-component edges without inspecting edge status (§2.1).
//
// Construction (following Jowhari–Saglam–Tardos l0-sampling via linear
// projections, and Cormode–Firmani for the limited-independence variant the
// paper cites): Reps independent repetitions, each with Levels nested
// geometric subsampling levels (slot survives level l with probability
// 2^-l) and Buckets one-sparse testers per level. A one-sparse tester keeps
// (count, idSum, fingerprint) where the fingerprint is sum a_i * z^id_i
// over GF(2^61-1); a bucket holding exactly one item passes the fingerprint
// test and reveals (id, sign). All hash functions and the fingerprint base
// z derive from a shared seed, so machines build *identical* projections —
// the distributed analogue of the paper's shared sketch matrix L_j.
//
//km:roundpure
package sketch

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"

	"kmgraph/internal/field"
	"kmgraph/internal/graph"
	"kmgraph/internal/hashing"
	"kmgraph/internal/wire"
)

// Params fixes the shape of a sketch. All machines must use identical
// Params and seed within a phase for sketches to be addable.
type Params struct {
	N       int // number of graph vertices; universe is the n*n edge-slot grid
	Levels  int // geometric subsampling levels
	Buckets int // one-sparse testers per level
	Reps    int // independent repetitions
}

// DefaultParams returns parameters sized for an n-vertex graph:
// Levels = 2*ceil(log2 n) + 2 (universe n^2), Buckets = 6, Reps = 2,
// giving an empirical sampling failure rate well under 10%.
func DefaultParams(n int) Params {
	l := 2
	for s := 1; s < n; s <<= 1 {
		l += 2
	}
	return Params{N: n, Levels: l, Buckets: 6, Reps: 2}
}

// Cells returns the total number of one-sparse testers.
func (p Params) Cells() int { return p.Levels * p.Buckets * p.Reps }

// Status is the outcome of sampling from a sketch.
type Status int

const (
	// Empty means the sketched vector is (or cancelled to) all zeros:
	// the component has no outgoing edges.
	Empty Status = iota
	// Sampled means a nonzero slot was recovered.
	Sampled
	// Failed means the vector is nonzero but no level isolated a single
	// slot; the caller should treat the component as inactive this phase
	// (a low-probability Monte Carlo failure, as the paper permits).
	Failed
)

func (s Status) String() string {
	switch s {
	case Empty:
		return "empty"
	case Sampled:
		return "sampled"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

type cell struct {
	count int64
	idSum uint64 // field element
	fp    uint64 // field element
}

// Sketch is a linear l0-sampler over the edge-slot universe.
//
// Seed-derived hash state is precomputed once per (re)seed so the hot
// AddItem/Sample paths avoid repeated full hash and exponentiation chains:
// zpow caches z^(2^i) for the fingerprint power ladder, bpre caches the
// id-independent prefix of the bucket hash per (rep, level), and lvlSeed /
// qsalt cache the level and query salts. All derived values are exactly
// the ones the naive per-call formulas produce — the sketch contents are
// bit-identical either way.
type Sketch struct {
	p       Params
	seed    uint64
	zbase   uint64
	lvlSeed uint64   // Hash2(seed, 0xa11ce), the levelOf salt
	qsalt   uint64   // Hash2(seed, 0x9a3f1e), the Sample query salt
	zpow    []uint64 // zbase^(2^i) for i < bits(N²)
	zpowN   []uint64 // (zbase^N)^(2^i) for i < bits(N)
	bpre    []uint64 // Hash3(seed, rep, level) per (rep*Levels + level)
	cells   []cell
	// touched[rep*Levels+level] has bit b set if bucket b was ever written;
	// clear bits are guaranteed-zero cells, so the scan paths (encode,
	// sample, zero test) skip them. A touched cell may still have cancelled
	// back to zero — those are re-checked against the actual values.
	touched []uint64
}

// New returns an all-zero sketch for the given shared seed. Seeds must be
// fresh per phase (the paper's per-phase sketch matrix L_j); derive them as
// a shared hash of (master seed, phase, iteration).
func New(p Params, seed uint64) *Sketch {
	if p.Buckets > 64 {
		// The touched/encode bucket bitmaps are one uint64 per (rep, level).
		panic(fmt.Sprintf("sketch: Buckets = %d, bitmap supports at most 64", p.Buckets))
	}
	s := &Sketch{
		p:       p,
		cells:   make([]cell, p.Cells()),
		touched: make([]uint64, p.Reps*p.Levels),
	}
	s.reseed(seed)
	return s
}

func zBase(seed uint64) uint64 {
	z := field.Reduce(hashing.Hash2(seed, 0x5eedba5e))
	if z < 2 {
		z += 2
	}
	return z
}

// reseed recomputes the seed-derived tables (without touching cells).
func (s *Sketch) reseed(seed uint64) {
	s.seed = seed
	s.zbase = zBase(seed)
	s.lvlSeed = hashing.Hash2(seed, 0xa11ce)
	s.qsalt = hashing.Hash2(seed, 0x9a3f1e)
	zbits := bits.Len64(uint64(s.p.N) * uint64(s.p.N))
	if zbits < 1 {
		zbits = 1
	}
	if cap(s.zpow) < zbits {
		s.zpow = make([]uint64, zbits)
	}
	s.zpow = s.zpow[:zbits]
	z := s.zbase
	for i := range s.zpow {
		s.zpow[i] = z
		z = field.Mul(z, z)
	}
	nbits := bits.Len64(uint64(s.p.N))
	if nbits < 1 {
		nbits = 1
	}
	if cap(s.zpowN) < nbits {
		s.zpowN = make([]uint64, nbits)
	}
	s.zpowN = s.zpowN[:nbits]
	z = s.powZ(uint64(s.p.N))
	for i := range s.zpowN {
		s.zpowN[i] = z
		z = field.Mul(z, z)
	}
	nb := s.p.Reps * s.p.Levels
	if cap(s.bpre) < nb {
		s.bpre = make([]uint64, nb)
	}
	s.bpre = s.bpre[:nb]
	for rep := 0; rep < s.p.Reps; rep++ {
		for level := 0; level < s.p.Levels; level++ {
			s.bpre[rep*s.p.Levels+level] = hashing.Hash3(seed, uint64(rep), uint64(level))
		}
	}
}

// Reset zeroes the sketch in place, keeping shape, seed, and hash tables.
// Sparse sketches clear only the cells that were written; dense ones fall
// back to one bulk clear.
func (s *Sketch) Reset() {
	nb := s.p.Buckets
	n := 0
	for _, t := range s.touched {
		n += bits.OnesCount64(t)
	}
	if 4*n >= len(s.cells) {
		clear(s.cells)
		clear(s.touched)
		return
	}
	for rl, t := range s.touched {
		if t == 0 {
			continue
		}
		base := rl * nb
		for ; t != 0; t &= t - 1 {
			s.cells[base+bits.TrailingZeros64(t)] = cell{}
		}
		s.touched[rl] = 0
	}
}

// Params returns the sketch shape.
func (s *Sketch) Params() Params { return s.p }

// Seed returns the shared seed the sketch was built with.
func (s *Sketch) Seed() uint64 { return s.seed }

func (s *Sketch) cellAt(rep, level, bucket int) *cell {
	return &s.cells[(rep*s.p.Levels+level)*s.p.Buckets+bucket]
}

// powZ returns zbase^id via the cached power ladder: the product of
// zbase^(2^i) over id's set bits — the same product binary exponentiation
// computes, without redoing the squarings per call.
func (s *Sketch) powZ(id uint64) uint64 {
	if id>>len(s.zpow) != 0 {
		return field.Pow(s.zbase, id)
	}
	r := uint64(1)
	for e := id; e != 0; e &= e - 1 {
		r = field.Mul(r, s.zpow[bits.TrailingZeros64(e)])
	}
	return r
}

// levelOf returns the highest subsampling level slot id survives to,
// capped at Levels-1. Nested: the slot is present in levels 0..levelOf.
func (s *Sketch) levelOf(id uint64) int {
	tz := hashing.TrailingZeros(s.lvlSeed, id)
	if tz >= s.p.Levels {
		return s.p.Levels - 1
	}
	return tz
}

// idMix is the id-dependent half of the bucket hash; combined with the
// cached (rep, level) prefix it reproduces hashing.Hash4 exactly.
func idMix(id uint64) uint64 {
	return hashing.Mix64(id ^ 0x8CB92BA72F3D8DD7)
}

func (s *Sketch) bucketOf(rep, level int, id uint64) int {
	return hashing.RangeOf(hashing.Mix64(s.bpre[rep*s.p.Levels+level]^idMix(id)), s.p.Buckets)
}

// powN returns (zbase^N)^e via the cached second ladder, so fingerprints
// of edge slots id = x·N + y factor into two short-exponent products.
func (s *Sketch) powN(e uint64) uint64 {
	if e>>len(s.zpowN) != 0 {
		return field.Pow(s.powZ(uint64(s.p.N)), e)
	}
	r := uint64(1)
	for ; e != 0; e &= e - 1 {
		r = field.Mul(r, s.zpowN[bits.TrailingZeros64(e)])
	}
	return r
}

// AddItem adds sign (+1 or -1) to slot id.
//
//km:hotpath
func (s *Sketch) AddItem(id uint64, sign int) {
	s.addItemZ(id, sign, s.powZ(id))
}

// addItemZ is AddItem with the fingerprint power z^id supplied by the
// caller (AddVertex computes it incrementally from the two power ladders;
// the value is identical to powZ(id) either way).
//
//km:hotpath
func (s *Sketch) addItemZ(id uint64, sign int, zid uint64) {
	idf := field.Reduce(id)
	mix := idMix(id)
	top := s.levelOf(id)
	nb := s.p.Buckets
	cells, touched, bpre := s.cells, s.touched, s.bpre
	for rep := 0; rep < s.p.Reps; rep++ {
		base := rep * s.p.Levels
		for level := 0; level <= top; level++ {
			b := hashing.RangeOf(hashing.Mix64(bpre[base+level]^mix), nb)
			touched[base+level] |= 1 << uint(b)
			c := &cells[(base+level)*nb+b]
			if sign > 0 {
				c.count++
				c.idSum = field.Add(c.idSum, idf)
				c.fp = field.Add(c.fp, zid)
			} else {
				c.count--
				c.idSum = field.Sub(c.idSum, idf)
				c.fp = field.Sub(c.fp, zid)
			}
		}
	}
}

// AddVertex adds the full incidence vector of vertex u given its adjacency
// list, including only edges for which filter returns true (nil = all).
// The filter receives the origin vertex u and the half-edge, so callers can
// threshold on the (weight, edge ID) total order — the "zero out all
// entries referring to heavier edges" step of the paper's MST elimination
// (§3.1). The sign convention implements a_u: +1 when u is the smaller
// endpoint.
//
//km:hotpath
func (s *Sketch) AddVertex(u int, adj []graph.Half, filter func(u int, h graph.Half) bool) {
	// Fingerprint powers factor over the edge-slot id x·N + y:
	// z^(x·N+y) = (z^N)^x · z^y. The per-vertex factors z^(u·N) and z^u are
	// computed once, the per-neighbor factor needs only a bits(N)-long
	// ladder walk — about half the multiplies of a full powZ per item.
	n := uint64(s.p.N)
	var zun, zu uint64
	haveZun, haveZu := false, false
	for _, h := range adj {
		if filter != nil && !filter(u, h) {
			continue
		}
		if u < h.To {
			if !haveZun {
				zun = s.powN(uint64(u))
				haveZun = true
			}
			id := uint64(u)*n + uint64(h.To)
			s.addItemZ(id, +1, field.Mul(zun, s.powZ(uint64(h.To))))
		} else {
			if !haveZu {
				zu = s.powZ(uint64(u))
				haveZu = true
			}
			id := uint64(h.To)*n + uint64(u)
			s.addItemZ(id, -1, field.Mul(s.powN(uint64(h.To)), zu))
		}
	}
}

// Clone returns an independent deep copy of s (same shape and seed).
func (s *Sketch) Clone() *Sketch {
	c := New(s.p, s.seed)
	copy(c.cells, s.cells)
	copy(c.touched, s.touched)
	return c
}

// Add accumulates other into s (vector addition). Shapes and seeds must
// match; this is the linearity that merges component parts (Lemma 2).
//
//km:hotpath
func (s *Sketch) Add(other *Sketch) error {
	if s.p != other.p || s.seed != other.seed {
		return fmt.Errorf("sketch: shape/seed mismatch") //kmvet:ignore error path; shapes are fixed per run
	}
	nb := s.p.Buckets
	for rl, t := range other.touched {
		base := rl * nb
		for tt := t; tt != 0; tt &= tt - 1 {
			b := bits.TrailingZeros64(tt)
			sc, oc := &s.cells[base+b], &other.cells[base+b]
			sc.count += oc.count
			sc.idSum = field.Add(sc.idSum, oc.idSum)
			sc.fp = field.Add(sc.fp, oc.fp)
		}
		s.touched[rl] |= t
	}
	return nil
}

// IsZero reports whether every tester is zero.
func (s *Sketch) IsZero() bool {
	nb := s.p.Buckets
	for rl, t := range s.touched {
		base := rl * nb
		for ; t != 0; t &= t - 1 {
			c := &s.cells[base+bits.TrailingZeros64(t)]
			if c.count != 0 || c.idSum != 0 || c.fp != 0 {
				return false
			}
		}
	}
	return true
}

// verify checks whether cell c holds exactly one slot and returns it.
func (s *Sketch) verify(c *cell) (id uint64, sign int, ok bool) {
	switch c.count {
	case 1:
		id = c.idSum
		sign = +1
	case -1:
		id = field.Neg(c.idSum)
		sign = -1
	default:
		return 0, 0, false
	}
	maxID := uint64(s.p.N) * uint64(s.p.N)
	if id >= maxID {
		return 0, 0, false
	}
	want := s.powZ(id)
	if sign < 0 {
		want = field.Neg(want)
	}
	if c.fp != want {
		return 0, 0, false
	}
	return id, sign, true
}

// Sample recovers one nonzero slot of the sketched vector, scanning levels
// from sparsest down. Among the verified slots of the first productive
// level it returns the one maximizing a query hash, which approximates a
// uniform sample over the support (the max-hash slot is the level's
// "survivor"). The same sketch always returns the same answer.
func (s *Sketch) Sample() (id uint64, sign int, st Status) {
	if s.IsZero() {
		return 0, 0, Empty
	}
	qsalt := s.qsalt
	nb := s.p.Buckets
	for level := s.p.Levels - 1; level >= 0; level-- {
		var bestID uint64
		var bestSign int
		var bestH uint64
		found := false
		for rep := 0; rep < s.p.Reps; rep++ {
			rl := rep*s.p.Levels + level
			for t := s.touched[rl]; t != 0; t &= t - 1 {
				b := bits.TrailingZeros64(t)
				c := &s.cells[rl*nb+b]
				cid, csign, ok := s.verify(c)
				if !ok {
					continue
				}
				// Consistency: the slot must actually belong here.
				if s.levelOf(cid) < level || s.bucketOf(rep, level, cid) != b {
					continue
				}
				h := hashing.Hash2(qsalt, cid)
				if !found || h > bestH {
					bestID, bestSign, bestH, found = cid, csign, h, true
				}
			}
		}
		if found {
			return bestID, bestSign, Sampled
		}
	}
	return 0, 0, Failed
}

// SampleEdge decodes a sampled slot into a canonical edge (x < y) plus the
// side flag: insideSmaller reports whether the *smaller* endpoint x is the
// one inside the sketched vertex set (sign +1), which the connectivity
// algorithm uses to identify the neighboring component's endpoint.
func (s *Sketch) SampleEdge() (x, y int, insideSmaller bool, st Status) {
	id, sign, st := s.Sample()
	if st != Sampled {
		return 0, 0, false, st
	}
	x, y = graph.DecodeEdgeID(id, s.p.N)
	return x, y, sign > 0, Sampled
}

// EncodeTo appends a compact wire encoding: per (rep, level) a bucket
// bitmap of nonzero testers followed by their contents. Zero sketches cost
// a few bytes; dense ones are bounded by Cells() * ~17 bytes.
//
//km:hotpath
func (s *Sketch) EncodeTo(buf []byte) []byte {
	nb := s.p.Buckets
	for rl, t := range s.touched {
		base := rl * nb
		var bitmap uint64
		for tt := t; tt != 0; tt &= tt - 1 {
			b := bits.TrailingZeros64(tt)
			c := &s.cells[base+b]
			if c.count != 0 || c.idSum != 0 || c.fp != 0 {
				bitmap |= 1 << uint(b)
			}
		}
		buf = wire.AppendUvarint(buf, bitmap)
		for bm := bitmap; bm != 0; bm &= bm - 1 {
			c := &s.cells[base+bits.TrailingZeros64(bm)]
			buf = wire.AppendVarint(buf, c.count)
			buf = wire.AppendU64(buf, c.idSum)
			buf = wire.AppendU64(buf, c.fp)
		}
	}
	return buf
}

// Decode parses a sketch produced by EncodeTo with the same Params/seed.
func Decode(p Params, seed uint64, data []byte) (*Sketch, error) {
	if p.Buckets > 64 {
		return nil, fmt.Errorf("sketch: bucket bitmap supports at most 64 buckets")
	}
	s := New(p, seed)
	if err := s.AddEncoded(data); err != nil {
		return nil, err
	}
	return s, nil
}

// AddEncoded accumulates a wire-encoded sketch (same Params/seed) into s
// by linearity, without materializing the intermediate: decoding into a
// zero sketch equals Decode; decoding into a non-zero one equals
// Decode-then-Add. This is the proxy-side summation fast path.
func (s *Sketch) AddEncoded(data []byte) error {
	nb := s.p.Buckets
	off := 0
	for rl := 0; rl < s.p.Reps*s.p.Levels; rl++ {
		bitmap, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return wire.ErrTruncated
		}
		off += n
		if bitmap>>uint(nb) != 0 {
			return fmt.Errorf("sketch: bucket bitmap out of range")
		}
		s.touched[rl] |= bitmap
		base := rl * nb
		for bm := bitmap; bm != 0; bm &= bm - 1 {
			cnt, n := binary.Varint(data[off:])
			if n <= 0 {
				return wire.ErrTruncated
			}
			off += n
			if len(data)-off < 16 {
				return wire.ErrTruncated
			}
			// EncodeTo emits canonical field elements; reduce defensively
			// only when a value is out of range (never on the fast path).
			idSum := binary.LittleEndian.Uint64(data[off:])
			fp := binary.LittleEndian.Uint64(data[off+8:])
			if idSum >= field.P || fp >= field.P {
				idSum, fp = field.Reduce(idSum), field.Reduce(fp)
			}
			c := &s.cells[base+bits.TrailingZeros64(bm)]
			c.count += cnt
			c.idSum = field.Add(c.idSum, idSum)
			c.fp = field.Add(c.fp, fp)
			off += 16
		}
	}
	if off != len(data) {
		return fmt.Errorf("wire: %d trailing bytes", len(data)-off)
	}
	return nil
}

// shared recycles sketch allocations of one shape across the whole
// process (sync.Map keyed by Params, sync.Pool per shape): one-shot runs
// stop paying a fresh cell-array allocation per sketch per run. Sketches
// from the shared pool are always Reset before use, so reuse is invisible.
var shared sync.Map // Params -> *sync.Pool

func sharedPool(p Params) *sync.Pool {
	if v, ok := shared.Load(p); ok {
		return v.(*sync.Pool)
	}
	v, _ := shared.LoadOrStore(p, &sync.Pool{})
	return v.(*sync.Pool)
}

// Pool recycles sketches of one shape across phases: Get returns a zeroed
// sketch for the requested seed (reusing a free one's cell array), Put
// returns sketches for reuse. The pool caches the seed-derived hash tables
// of the last seed it saw, so the per-phase table computation is paid once
// per machine instead of once per sketch (within a phase, every part and
// sum sketch shares one seed); allocation misses are backed by the
// process-wide shared pool. Pools are single-goroutine, like the machines
// that own them.
type Pool struct {
	p      Params
	free   []*Sketch
	tab    *Sketch // table donor: holds the cached tables for tab.seed
	global *sync.Pool
}

// NewPool returns a pool producing sketches of shape p.
func NewPool(p Params) *Pool {
	if p.Buckets > 64 {
		panic(fmt.Sprintf("sketch: Buckets = %d, bitmap supports at most 64", p.Buckets))
	}
	return &Pool{p: p, global: sharedPool(p)}
}

// ensureTab makes the pool's table donor hold tables for seed.
func (pl *Pool) ensureTab(seed uint64) *Sketch {
	if pl.tab == nil {
		pl.tab = &Sketch{p: pl.p}
		pl.tab.reseed(seed)
	} else if pl.tab.seed != seed {
		pl.tab.reseed(seed)
	}
	return pl.tab
}

// adoptTab copies the donor's precomputed tables into s.
func (s *Sketch) adoptTab(tab *Sketch) {
	s.seed = tab.seed
	s.zbase = tab.zbase
	s.lvlSeed = tab.lvlSeed
	s.qsalt = tab.qsalt
	s.zpow = append(s.zpow[:0], tab.zpow...)
	s.zpowN = append(s.zpowN[:0], tab.zpowN...)
	s.bpre = append(s.bpre[:0], tab.bpre...)
}

// Get returns an all-zero sketch for the given seed.
func (pl *Pool) Get(seed uint64) *Sketch {
	if n := len(pl.free); n > 0 {
		s := pl.free[n-1]
		pl.free = pl.free[:n-1]
		if s.seed != seed {
			s.adoptTab(pl.ensureTab(seed))
		}
		s.Reset()
		return s
	}
	if v := pl.global.Get(); v != nil {
		s := v.(*Sketch)
		s.adoptTab(pl.ensureTab(seed))
		s.Reset()
		return s
	}
	s := &Sketch{
		p:       pl.p,
		cells:   make([]cell, pl.p.Cells()),
		touched: make([]uint64, pl.p.Reps*pl.p.Levels),
	}
	s.adoptTab(pl.ensureTab(seed))
	return s
}

// Put returns sketches to the local free list. Nil entries are ignored.
// The free list is retained until Release hands it to the process-wide
// shared pool — call Release when the owning machine's run is over.
func (pl *Pool) Put(ss ...*Sketch) {
	for _, s := range ss {
		if s != nil {
			pl.free = append(pl.free, s)
		}
	}
}

// Release drains the local free list into the process-wide shared pool.
func (pl *Pool) Release() {
	for _, s := range pl.free {
		pl.global.Put(s)
	}
	pl.free = pl.free[:0]
}
