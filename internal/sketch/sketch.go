// Package sketch implements the random linear graph sketches of paper §2.3:
// AGM-style l0-samplers over edge-incidence vectors.
//
// For a vertex u of an n-vertex graph, the incidence vector a_u over the
// (n choose 2) edge slots has a_u[(x,y)] = +1 if u = x < y and the edge
// exists, -1 if x < y = u, and 0 otherwise. A sketch s_u is a small linear
// projection of a_u from which one nonzero coordinate — one incident edge —
// can be recovered. Linearity is the crucial property: s_u + s_v is a valid
// sketch of a_u + a_v, in which the slot of edge (u,v) has cancelled to
// zero. Summing the sketches of a whole component therefore yields a sketch
// of its *outgoing* edges only, which is how the connectivity algorithm
// samples inter-component edges without inspecting edge status (§2.1).
//
// Construction (following Jowhari–Saglam–Tardos l0-sampling via linear
// projections, and Cormode–Firmani for the limited-independence variant the
// paper cites): Reps independent repetitions, each with Levels nested
// geometric subsampling levels (slot survives level l with probability
// 2^-l) and Buckets one-sparse testers per level. A one-sparse tester keeps
// (count, idSum, fingerprint) where the fingerprint is sum a_i * z^id_i
// over GF(2^61-1); a bucket holding exactly one item passes the fingerprint
// test and reveals (id, sign). All hash functions and the fingerprint base
// z derive from a shared seed, so machines build *identical* projections —
// the distributed analogue of the paper's shared sketch matrix L_j.
package sketch

import (
	"fmt"

	"kmgraph/internal/field"
	"kmgraph/internal/graph"
	"kmgraph/internal/hashing"
	"kmgraph/internal/wire"
)

// Params fixes the shape of a sketch. All machines must use identical
// Params and seed within a phase for sketches to be addable.
type Params struct {
	N       int // number of graph vertices; universe is the n*n edge-slot grid
	Levels  int // geometric subsampling levels
	Buckets int // one-sparse testers per level
	Reps    int // independent repetitions
}

// DefaultParams returns parameters sized for an n-vertex graph:
// Levels = 2*ceil(log2 n) + 2 (universe n^2), Buckets = 6, Reps = 2,
// giving an empirical sampling failure rate well under 10%.
func DefaultParams(n int) Params {
	l := 2
	for s := 1; s < n; s <<= 1 {
		l += 2
	}
	return Params{N: n, Levels: l, Buckets: 6, Reps: 2}
}

// Cells returns the total number of one-sparse testers.
func (p Params) Cells() int { return p.Levels * p.Buckets * p.Reps }

// Status is the outcome of sampling from a sketch.
type Status int

const (
	// Empty means the sketched vector is (or cancelled to) all zeros:
	// the component has no outgoing edges.
	Empty Status = iota
	// Sampled means a nonzero slot was recovered.
	Sampled
	// Failed means the vector is nonzero but no level isolated a single
	// slot; the caller should treat the component as inactive this phase
	// (a low-probability Monte Carlo failure, as the paper permits).
	Failed
)

func (s Status) String() string {
	switch s {
	case Empty:
		return "empty"
	case Sampled:
		return "sampled"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

type cell struct {
	count int64
	idSum uint64 // field element
	fp    uint64 // field element
}

// Sketch is a linear l0-sampler over the edge-slot universe.
type Sketch struct {
	p     Params
	seed  uint64
	zbase uint64
	cells []cell
}

// New returns an all-zero sketch for the given shared seed. Seeds must be
// fresh per phase (the paper's per-phase sketch matrix L_j); derive them as
// a shared hash of (master seed, phase, iteration).
func New(p Params, seed uint64) *Sketch {
	return &Sketch{
		p:     p,
		seed:  seed,
		zbase: zBase(seed),
		cells: make([]cell, p.Cells()),
	}
}

func zBase(seed uint64) uint64 {
	z := field.Reduce(hashing.Hash2(seed, 0x5eedba5e))
	if z < 2 {
		z += 2
	}
	return z
}

// Params returns the sketch shape.
func (s *Sketch) Params() Params { return s.p }

// Seed returns the shared seed the sketch was built with.
func (s *Sketch) Seed() uint64 { return s.seed }

func (s *Sketch) cellAt(rep, level, bucket int) *cell {
	return &s.cells[(rep*s.p.Levels+level)*s.p.Buckets+bucket]
}

// levelOf returns the highest subsampling level slot id survives to,
// capped at Levels-1. Nested: the slot is present in levels 0..levelOf.
func (s *Sketch) levelOf(id uint64) int {
	tz := hashing.TrailingZeros(hashing.Hash2(s.seed, 0xa11ce), id)
	if tz >= s.p.Levels {
		return s.p.Levels - 1
	}
	return tz
}

func (s *Sketch) bucketOf(rep, level int, id uint64) int {
	return hashing.RangeOf(hashing.Hash4(s.seed, uint64(rep), uint64(level), id), s.p.Buckets)
}

// AddItem adds sign (+1 or -1) to slot id.
func (s *Sketch) AddItem(id uint64, sign int) {
	zid := field.Pow(s.zbase, id)
	idf := field.Reduce(id)
	top := s.levelOf(id)
	for rep := 0; rep < s.p.Reps; rep++ {
		for level := 0; level <= top; level++ {
			c := s.cellAt(rep, level, s.bucketOf(rep, level, id))
			if sign > 0 {
				c.count++
				c.idSum = field.Add(c.idSum, idf)
				c.fp = field.Add(c.fp, zid)
			} else {
				c.count--
				c.idSum = field.Sub(c.idSum, idf)
				c.fp = field.Sub(c.fp, zid)
			}
		}
	}
}

// AddVertex adds the full incidence vector of vertex u given its adjacency
// list, including only edges for which filter returns true (nil = all).
// The filter receives the origin vertex u and the half-edge, so callers can
// threshold on the (weight, edge ID) total order — the "zero out all
// entries referring to heavier edges" step of the paper's MST elimination
// (§3.1). The sign convention implements a_u: +1 when u is the smaller
// endpoint.
func (s *Sketch) AddVertex(u int, adj []graph.Half, filter func(u int, h graph.Half) bool) {
	for _, h := range adj {
		if filter != nil && !filter(u, h) {
			continue
		}
		id := graph.EdgeID(u, h.To, s.p.N)
		if u < h.To {
			s.AddItem(id, +1)
		} else {
			s.AddItem(id, -1)
		}
	}
}

// Clone returns an independent deep copy of s (same shape and seed).
func (s *Sketch) Clone() *Sketch {
	return &Sketch{p: s.p, seed: s.seed, zbase: s.zbase, cells: append([]cell(nil), s.cells...)}
}

// Add accumulates other into s (vector addition). Shapes and seeds must
// match; this is the linearity that merges component parts (Lemma 2).
func (s *Sketch) Add(other *Sketch) error {
	if s.p != other.p || s.seed != other.seed {
		return fmt.Errorf("sketch: shape/seed mismatch")
	}
	for i := range s.cells {
		s.cells[i].count += other.cells[i].count
		s.cells[i].idSum = field.Add(s.cells[i].idSum, other.cells[i].idSum)
		s.cells[i].fp = field.Add(s.cells[i].fp, other.cells[i].fp)
	}
	return nil
}

// IsZero reports whether every tester is zero.
func (s *Sketch) IsZero() bool {
	for i := range s.cells {
		c := &s.cells[i]
		if c.count != 0 || c.idSum != 0 || c.fp != 0 {
			return false
		}
	}
	return true
}

// verify checks whether cell c holds exactly one slot and returns it.
func (s *Sketch) verify(c *cell) (id uint64, sign int, ok bool) {
	switch c.count {
	case 1:
		id = c.idSum
		sign = +1
	case -1:
		id = field.Neg(c.idSum)
		sign = -1
	default:
		return 0, 0, false
	}
	maxID := uint64(s.p.N) * uint64(s.p.N)
	if id >= maxID {
		return 0, 0, false
	}
	want := field.Pow(s.zbase, id)
	if sign < 0 {
		want = field.Neg(want)
	}
	if c.fp != want {
		return 0, 0, false
	}
	return id, sign, true
}

// Sample recovers one nonzero slot of the sketched vector, scanning levels
// from sparsest down. Among the verified slots of the first productive
// level it returns the one maximizing a query hash, which approximates a
// uniform sample over the support (the max-hash slot is the level's
// "survivor"). The same sketch always returns the same answer.
func (s *Sketch) Sample() (id uint64, sign int, st Status) {
	if s.IsZero() {
		return 0, 0, Empty
	}
	qsalt := hashing.Hash2(s.seed, 0x9a3f1e)
	for level := s.p.Levels - 1; level >= 0; level-- {
		var bestID uint64
		var bestSign int
		var bestH uint64
		found := false
		for rep := 0; rep < s.p.Reps; rep++ {
			for b := 0; b < s.p.Buckets; b++ {
				c := s.cellAt(rep, level, b)
				cid, csign, ok := s.verify(c)
				if !ok {
					continue
				}
				// Consistency: the slot must actually belong here.
				if s.levelOf(cid) < level || s.bucketOf(rep, level, cid) != b {
					continue
				}
				h := hashing.Hash2(qsalt, cid)
				if !found || h > bestH {
					bestID, bestSign, bestH, found = cid, csign, h, true
				}
			}
		}
		if found {
			return bestID, bestSign, Sampled
		}
	}
	return 0, 0, Failed
}

// SampleEdge decodes a sampled slot into a canonical edge (x < y) plus the
// side flag: insideSmaller reports whether the *smaller* endpoint x is the
// one inside the sketched vertex set (sign +1), which the connectivity
// algorithm uses to identify the neighboring component's endpoint.
func (s *Sketch) SampleEdge() (x, y int, insideSmaller bool, st Status) {
	id, sign, st := s.Sample()
	if st != Sampled {
		return 0, 0, false, st
	}
	x, y = graph.DecodeEdgeID(id, s.p.N)
	return x, y, sign > 0, Sampled
}

// EncodeTo appends a compact wire encoding: per (rep, level) a bucket
// bitmap of nonzero testers followed by their contents. Zero sketches cost
// a few bytes; dense ones are bounded by Cells() * ~17 bytes.
func (s *Sketch) EncodeTo(buf []byte) []byte {
	for rep := 0; rep < s.p.Reps; rep++ {
		for level := 0; level < s.p.Levels; level++ {
			var bitmap uint64
			for b := 0; b < s.p.Buckets; b++ {
				c := s.cellAt(rep, level, b)
				if c.count != 0 || c.idSum != 0 || c.fp != 0 {
					bitmap |= 1 << uint(b)
				}
			}
			buf = wire.AppendUvarint(buf, bitmap)
			for b := 0; b < s.p.Buckets; b++ {
				if bitmap&(1<<uint(b)) == 0 {
					continue
				}
				c := s.cellAt(rep, level, b)
				buf = wire.AppendVarint(buf, c.count)
				buf = wire.AppendU64(buf, c.idSum)
				buf = wire.AppendU64(buf, c.fp)
			}
		}
	}
	return buf
}

// Decode parses a sketch produced by EncodeTo with the same Params/seed.
func Decode(p Params, seed uint64, data []byte) (*Sketch, error) {
	if p.Buckets > 64 {
		return nil, fmt.Errorf("sketch: bucket bitmap supports at most 64 buckets")
	}
	s := New(p, seed)
	r := wire.NewReader(data)
	for rep := 0; rep < p.Reps; rep++ {
		for level := 0; level < p.Levels; level++ {
			bitmap := r.Uvarint()
			for b := 0; b < p.Buckets; b++ {
				if bitmap&(1<<uint(b)) == 0 {
					continue
				}
				c := s.cellAt(rep, level, b)
				c.count = r.Varint()
				c.idSum = r.U64()
				c.fp = r.U64()
			}
		}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return s, nil
}
