package sketch

import (
	"testing"

	"kmgraph/internal/graph"
	"kmgraph/internal/hashing"
)

func TestOneItemRecovery(t *testing.T) {
	p := DefaultParams(100)
	for _, sign := range []int{+1, -1} {
		s := New(p, 42)
		s.AddItem(577, sign)
		id, gs, st := s.Sample()
		if st != Sampled || id != 577 || gs != sign {
			t.Fatalf("sign %d: got id=%d sign=%d status=%v", sign, id, gs, st)
		}
	}
}

func TestEmptySketch(t *testing.T) {
	s := New(DefaultParams(50), 1)
	if !s.IsZero() {
		t.Fatal("fresh sketch should be zero")
	}
	if _, _, st := s.Sample(); st != Empty {
		t.Fatalf("status = %v, want Empty", st)
	}
}

func TestCancellation(t *testing.T) {
	p := DefaultParams(64)
	s := New(p, 7)
	// +1 and -1 on the same slot must cancel exactly.
	s.AddItem(999, +1)
	s.AddItem(999, -1)
	if !s.IsZero() {
		t.Fatal("cancelled sketch should be exactly zero")
	}
}

func TestLinearityMatchesDirect(t *testing.T) {
	p := DefaultParams(64)
	a := New(p, 3)
	b := New(p, 3)
	direct := New(p, 3)
	items := []struct {
		id   uint64
		sign int
	}{{5, 1}, {600, -1}, {601, 1}, {7, 1}, {5, -1}}
	for i, it := range items {
		if i%2 == 0 {
			a.AddItem(it.id, it.sign)
		} else {
			b.AddItem(it.id, it.sign)
		}
		direct.AddItem(it.id, it.sign)
	}
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	for i := range a.cells {
		if a.cells[i] != direct.cells[i] {
			t.Fatalf("cell %d differs after Add", i)
		}
	}
}

func TestAddShapeMismatch(t *testing.T) {
	a := New(DefaultParams(64), 3)
	b := New(DefaultParams(64), 4) // different seed
	if err := a.Add(b); err == nil {
		t.Fatal("expected seed mismatch error")
	}
	c := New(Params{N: 64, Levels: 4, Buckets: 6, Reps: 2}, 3)
	if err := a.Add(c); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestSampleReturnsSupportElement(t *testing.T) {
	p := DefaultParams(1000)
	for seed := uint64(0); seed < 50; seed++ {
		s := New(p, seed)
		support := map[uint64]int{}
		for i := 0; i < 20; i++ {
			id := hashing.Hash2(seed^0xbeef, uint64(i)) % (1000 * 1000)
			if _, dup := support[id]; dup {
				continue
			}
			sign := +1
			if i%3 == 0 {
				sign = -1
			}
			support[id] = sign
			s.AddItem(id, sign)
		}
		id, sign, st := s.Sample()
		if st == Failed {
			continue // counted separately below
		}
		if st != Sampled {
			t.Fatalf("seed %d: status %v on nonzero vector", seed, st)
		}
		wantSign, ok := support[id]
		if !ok {
			t.Fatalf("seed %d: sampled id %d not in support", seed, id)
		}
		if sign != wantSign {
			t.Fatalf("seed %d: sampled sign %d, want %d", seed, sign, wantSign)
		}
	}
}

func TestFailureRateSmall(t *testing.T) {
	// Over many seeds and support sizes, the sampler should succeed on the
	// overwhelming majority of nonzero vectors.
	p := DefaultParams(2000)
	fails, total := 0, 0
	for seed := uint64(0); seed < 40; seed++ {
		for _, supportSize := range []int{1, 2, 5, 20, 100, 500} {
			s := New(p, seed*131+7)
			for i := 0; i < supportSize; i++ {
				id := hashing.Hash3(seed, 0xfeed, uint64(i)) % (2000 * 2000)
				s.AddItem(id, 1)
			}
			_, _, st := s.Sample()
			total++
			if st == Failed {
				fails++
			} else if st == Empty {
				t.Fatal("nonzero vector reported Empty")
			}
		}
	}
	if rate := float64(fails) / float64(total); rate > 0.10 {
		t.Errorf("failure rate %.3f > 0.10 (%d/%d)", rate, fails, total)
	}
}

func TestSampleApproximatelyUniform(t *testing.T) {
	// Over independent seeds, each support element should be sampled a
	// non-negligible fraction of the time (no element starved).
	p := DefaultParams(500)
	const k = 8
	counts := make(map[uint64]int, k)
	ids := make([]uint64, k)
	for i := range ids {
		ids[i] = uint64(1000 + 777*i)
	}
	trials := 0
	for seed := uint64(0); seed < 600; seed++ {
		s := New(p, seed)
		for _, id := range ids {
			s.AddItem(id, 1)
		}
		id, _, st := s.Sample()
		if st != Sampled {
			continue
		}
		counts[id]++
		trials++
	}
	for _, id := range ids {
		frac := float64(counts[id]) / float64(trials)
		if frac < 0.02 {
			t.Errorf("id %d sampled fraction %.3f: starved", id, frac)
		}
	}
}

func TestVertexSketchSamplesIncidentEdge(t *testing.T) {
	g := graph.GNM(60, 250, 9)
	p := DefaultParams(60)
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) == 0 {
			continue
		}
		s := New(p, 77)
		s.AddVertex(u, g.Adj(u), nil)
		x, y, insideSmaller, st := s.SampleEdge()
		if st == Failed {
			continue
		}
		if st != Sampled {
			t.Fatalf("vertex %d: status %v", u, st)
		}
		if !g.HasEdge(x, y) {
			t.Fatalf("vertex %d: sampled non-edge (%d,%d)", u, x, y)
		}
		inside := y
		if insideSmaller {
			inside = x
		}
		if inside != u {
			t.Fatalf("vertex %d: side flag says inside=%d", u, inside)
		}
	}
}

func TestComponentSketchSamplesOutgoingEdge(t *testing.T) {
	// Two planted components joined by nothing; within a component the
	// summed sketch must sample only edges leaving the chosen subset.
	g := graph.RandomConnected(80, 200, 5)
	p := DefaultParams(80)
	inSet := func(v int) bool { return v < 40 }
	for seed := uint64(0); seed < 30; seed++ {
		s := New(p, seed)
		for u := 0; u < g.N(); u++ {
			if inSet(u) {
				s.AddVertex(u, g.Adj(u), nil)
			}
		}
		x, y, insideSmaller, st := s.SampleEdge()
		if st == Failed {
			continue
		}
		if st != Sampled {
			t.Fatalf("seed %d: status %v", seed, st)
		}
		if !g.HasEdge(x, y) {
			t.Fatalf("seed %d: non-edge (%d,%d)", seed, x, y)
		}
		if inSet(x) == inSet(y) {
			t.Fatalf("seed %d: edge (%d,%d) does not cross the cut", seed, x, y)
		}
		inside := y
		if insideSmaller {
			inside = x
		}
		if !inSet(inside) {
			t.Fatalf("seed %d: side flag wrong for (%d,%d)", seed, x, y)
		}
	}
}

func TestComponentSketchEmptyWhenSaturated(t *testing.T) {
	// Summing the sketches of ALL vertices of a graph cancels every edge.
	g := graph.RandomConnected(50, 120, 2)
	s := New(DefaultParams(50), 13)
	for u := 0; u < g.N(); u++ {
		s.AddVertex(u, g.Adj(u), nil)
	}
	if !s.IsZero() {
		t.Fatal("whole-graph sketch should cancel to zero")
	}
}

func TestFilteredSketch(t *testing.T) {
	// Only edges with weight < 5 should be sampleable.
	g := graph.WithDistinctWeights(graph.Complete(10), 3)
	p := DefaultParams(10)
	filter := func(u int, h graph.Half) bool { return h.W < 5 }
	for seed := uint64(0); seed < 20; seed++ {
		s := New(p, seed)
		s.AddVertex(0, g.Adj(0), filter)
		x, y, _, st := s.SampleEdge()
		if st == Failed || st == Empty {
			continue
		}
		w, ok := g.Weight(x, y)
		if !ok || w >= 5 {
			t.Fatalf("seed %d: sampled filtered-out edge (%d,%d,w=%d)", seed, x, y, w)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := DefaultParams(300)
	s := New(p, 21)
	for i := uint64(0); i < 40; i++ {
		sign := 1
		if i%2 == 0 {
			sign = -1
		}
		s.AddItem(hashing.Hash2(5, i)%(300*300), sign)
	}
	buf := s.EncodeTo(nil)
	d, err := Decode(p, 21, buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.cells {
		if s.cells[i] != d.cells[i] {
			t.Fatalf("cell %d differs after decode", i)
		}
	}
	// Zero sketch encodes small.
	z := New(p, 21).EncodeTo(nil)
	if len(z) > p.Reps*p.Levels*2 {
		t.Errorf("zero sketch encoding too large: %d bytes", len(z))
	}
}

func TestDecodeErrors(t *testing.T) {
	p := DefaultParams(300)
	s := New(p, 1)
	s.AddItem(5, 1)
	buf := s.EncodeTo(nil)
	if _, err := Decode(p, 1, buf[:len(buf)-3]); err == nil {
		t.Error("truncated decode should fail")
	}
	if _, err := Decode(p, 1, append(buf, 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
	bad := p
	bad.Buckets = 100
	if _, err := Decode(bad, 1, buf); err == nil {
		t.Error("too many buckets should fail")
	}
}

func TestDefaultParamsScaling(t *testing.T) {
	small := DefaultParams(10)
	big := DefaultParams(100000)
	if big.Levels <= small.Levels {
		t.Error("levels should grow with n")
	}
	if big.Levels > 64 {
		t.Errorf("levels = %d unexpectedly large", big.Levels)
	}
}

func BenchmarkAddVertexDeg16(b *testing.B) {
	g := graph.GNM(1000, 8000, 1)
	p := DefaultParams(1000)
	s := New(p, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddVertex(i%1000, g.Adj(i%1000), nil)
	}
}

func BenchmarkSample(b *testing.B) {
	p := DefaultParams(4096)
	s := New(p, 9)
	for i := uint64(0); i < 100; i++ {
		s.AddItem(i*37+5, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample()
	}
}

func BenchmarkEncode(b *testing.B) {
	p := DefaultParams(4096)
	s := New(p, 9)
	for i := uint64(0); i < 200; i++ {
		s.AddItem(i*53+11, 1)
	}
	b.ResetTimer()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = s.EncodeTo(buf[:0])
	}
}

// TestAddEncodedMatchesDecodeAdd pins the proxy-side fast path: adding an
// encoded sketch into an accumulator must equal Decode followed by Add.
func TestAddEncodedMatchesDecodeAdd(t *testing.T) {
	p := DefaultParams(64)
	const seed = 0xfeed
	a, b := New(p, seed), New(p, seed)
	for i := 0; i < 40; i++ {
		a.AddItem(uint64(i*63%4000), 1-2*(i%2))
		b.AddItem(uint64(i*17%4000), 1-2*((i+1)%2))
	}
	encA, encB := a.EncodeTo(nil), b.EncodeTo(nil)

	slow, err := Decode(p, seed, encA)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(p, seed, encB)
	if err != nil {
		t.Fatal(err)
	}
	if err := slow.Add(dec); err != nil {
		t.Fatal(err)
	}

	fast := New(p, seed)
	if err := fast.AddEncoded(encA); err != nil {
		t.Fatal(err)
	}
	if err := fast.AddEncoded(encB); err != nil {
		t.Fatal(err)
	}
	if got, want := string(fast.EncodeTo(nil)), string(slow.EncodeTo(nil)); got != want {
		t.Fatal("AddEncoded drifted from Decode+Add")
	}
}

// TestPoolReuseBitExact pins pooled-sketch reuse: a recycled sketch
// re-seeded for a new phase must encode exactly like a fresh one.
func TestPoolReuseBitExact(t *testing.T) {
	p := DefaultParams(128)
	pl := NewPool(p)
	build := func(s *Sketch) {
		for i := 0; i < 25; i++ {
			s.AddItem(uint64(i*i+3), +1)
		}
	}
	for _, seed := range []uint64{1, 99, 1 << 40} {
		got := pl.Get(seed)
		build(got)
		want := New(p, seed)
		build(want)
		if string(got.EncodeTo(nil)) != string(want.EncodeTo(nil)) {
			t.Fatalf("seed %d: pooled sketch drifted from fresh sketch", seed)
		}
		pl.Put(got)
	}
	pl.Release()
}

// TestAddVertexMatchesAddItem pins the two-ladder fingerprint path:
// AddVertex must produce exactly the cells that per-item AddItem does.
func TestAddVertexMatchesAddItem(t *testing.T) {
	n := 200
	p := DefaultParams(n)
	const seed = 0xabcde
	adj := []graph.Half{{To: 3, W: 1}, {To: 150, W: 2}, {To: 199, W: 3}, {To: 7, W: 4}}
	u := 42

	viaVertex := New(p, seed)
	viaVertex.AddVertex(u, adj, nil)

	viaItems := New(p, seed)
	for _, h := range adj {
		id := graph.EdgeID(u, h.To, n)
		if u < h.To {
			viaItems.AddItem(id, +1)
		} else {
			viaItems.AddItem(id, -1)
		}
	}
	if string(viaVertex.EncodeTo(nil)) != string(viaItems.EncodeTo(nil)) {
		t.Fatal("AddVertex two-ladder path drifted from AddItem")
	}
}
