package sketch

import "math"

// SupportSize returns an estimate of the number of nonzero slots of the
// sketched vector (the component's outgoing-edge count, in the
// connectivity setting), or 0 for a zero sketch.
//
// The estimator uses the geometric subsampling structure that is already
// there for l0-sampling: a slot survives to level l with probability
// 2^-l, so the deepest level that still contains *any* mass has, in
// expectation, log2(support) levels above it. We locate, per repetition,
// the highest level with a nonzero tester, correct by the expectation of
// the maximum of geometric variables, and average across repetitions.
// The result is a constant-factor approximation w.h.p. — the same
// guarantee class as the AGM sketch toolbox's L0 estimation, and enough
// for diagnostics and load prediction (how many sketches a proxy will
// receive next phase).
func (s *Sketch) SupportSize() float64 {
	if s.IsZero() {
		return 0
	}
	var topSum float64
	reps := 0
	for rep := 0; rep < s.p.Reps; rep++ {
		top := -1
		for level := s.p.Levels - 1; level >= 0; level-- {
			nonzero := false
			for b := 0; b < s.p.Buckets; b++ {
				c := s.cellAt(rep, level, b)
				if c.count != 0 || c.idSum != 0 || c.fp != 0 {
					nonzero = true
					break
				}
			}
			if nonzero {
				top = level
				break
			}
		}
		if top < 0 {
			continue
		}
		topSum += float64(top)
		reps++
	}
	if reps == 0 {
		return 0
	}
	// For t nonzero slots, E[max level] ≈ log2(t) + 1 (max of t geometric
	// variables with P(level ≥ l) = 2^-l; exactly 1 at t = 1). Average the
	// *levels* across repetitions before exponentiating — averaging
	// 2^level directly would be dominated by the geometric tail.
	return math.Exp2(topSum/float64(reps) - 1)
}
