package kmgraph_test

// Godoc examples for the public API. Each is a compiled, executed test
// with deterministic output (the engine is deterministic in its seed).

import (
	"fmt"

	"kmgraph"
)

func ExampleConnectivity() {
	// Three planted components, 8 machines.
	g := kmgraph.DisjointComponents(600, 3, 0.5, 4)
	res, err := kmgraph.Connectivity(g, kmgraph.Config{K: 8, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("components:", res.Components)
	// Output: components: 3
}

func ExampleMST() {
	g := kmgraph.WithDistinctWeights(kmgraph.GNM(200, 600, 2), 3)
	res, err := kmgraph.MST(g, kmgraph.MSTConfig{Config: kmgraph.Config{K: 4, Seed: 1}})
	if err != nil {
		panic(err)
	}
	_, oracle := kmgraph.MSTOracle(g)
	fmt.Println("optimal:", res.TotalWeight == oracle)
	// Output: optimal: true
}

func ExampleVerifyBipartiteness() {
	grid := kmgraph.Grid(10, 10) // grids are 2-colorable
	out, err := kmgraph.VerifyBipartiteness(grid, kmgraph.Config{K: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("bipartite:", out.Holds)
	// Output: bipartite: true
}

func ExampleRunLowerBound() {
	inst := kmgraph.NewDisjointnessInstance(64, 5)
	res, err := kmgraph.RunLowerBound(inst, kmgraph.Config{K: 4, Seed: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("SCS == DISJ:", res.SCSHolds == res.Disjoint)
	// Output: SCS == DISJ: true
}

func ExampleGraphBuilder() {
	b := kmgraph.NewGraphBuilder(4)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 7)
	g := b.Build()
	fmt.Println(g.N(), "vertices,", g.M(), "edges")
	// Output: 4 vertices, 2 edges
}
