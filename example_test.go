package kmgraph_test

// Godoc examples for the public API. Each is a compiled, executed test
// with deterministic output (the engine is deterministic in its seed).

import (
	"context"
	"fmt"

	"kmgraph"
)

// ExampleNewCluster loads a graph onto a resident cluster once and serves
// several algorithm families as jobs against that residency — the
// recommended serving API.
func ExampleNewCluster() {
	ctx := context.Background()
	g := kmgraph.WithDistinctWeights(kmgraph.RandomConnected(400, 900, 6), 7)
	c, err := kmgraph.NewCluster(g, kmgraph.WithK(8), kmgraph.WithSeed(3))
	if err != nil {
		panic(err)
	}
	defer c.Close()

	q, err := c.Connectivity(ctx) // Theorem 1
	if err != nil {
		panic(err)
	}
	fmt.Println("components:", q.Components)

	mst, err := c.MST(ctx) // Theorem 2, same residency
	if err != nil {
		panic(err)
	}
	_, oracle := kmgraph.MSTOracle(g)
	fmt.Println("mst optimal:", mst.TotalWeight == oracle)

	out, err := c.Verify(ctx, kmgraph.ProblemCycleContainment, kmgraph.VerifyArgs{})
	if err != nil {
		panic(err)
	}
	fmt.Println("has cycle:", out.Holds)

	// The load phase was paid exactly once, at NewCluster.
	fmt.Println("load paid once:", c.Metrics().LoadRounds > 0)
	// Output:
	// components: 1
	// mst optimal: true
	// has cycle: true
	// load paid once: true
}

// ExampleCluster_ApplyBatch mutates the resident graph and re-queries
// incrementally.
func ExampleCluster_ApplyBatch() {
	ctx := context.Background()
	c, err := kmgraph.NewCluster(kmgraph.Path(100), kmgraph.WithK(4), kmgraph.WithSeed(5))
	if err != nil {
		panic(err)
	}
	defer c.Close()
	if _, err := c.Connectivity(ctx); err != nil { // build-up query
		panic(err)
	}
	// Cut the path in the middle, then re-query incrementally.
	if _, err := c.ApplyBatch(ctx, []kmgraph.EdgeOp{{Del: true, U: 49, V: 50}}); err != nil {
		panic(err)
	}
	q, err := c.Connectivity(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Println("components after cut:", q.Components)
	fmt.Println("0 and 99 connected:", q.SameComponent(0, 99))
	// Output:
	// components after cut: 2
	// 0 and 99 connected: false
}

func ExampleConnectivity() {
	// Three planted components, 8 machines.
	g := kmgraph.DisjointComponents(600, 3, 0.5, 4)
	res, err := kmgraph.Connectivity(g, kmgraph.Config{K: 8, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("components:", res.Components)
	// Output: components: 3
}

func ExampleMST() {
	g := kmgraph.WithDistinctWeights(kmgraph.GNM(200, 600, 2), 3)
	res, err := kmgraph.MST(g, kmgraph.MSTConfig{Config: kmgraph.Config{K: 4, Seed: 1}})
	if err != nil {
		panic(err)
	}
	_, oracle := kmgraph.MSTOracle(g)
	fmt.Println("optimal:", res.TotalWeight == oracle)
	// Output: optimal: true
}

func ExampleVerifyBipartiteness() {
	grid := kmgraph.Grid(10, 10) // grids are 2-colorable
	out, err := kmgraph.VerifyBipartiteness(grid, kmgraph.Config{K: 4, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("bipartite:", out.Holds)
	// Output: bipartite: true
}

func ExampleRunLowerBound() {
	inst := kmgraph.NewDisjointnessInstance(64, 5)
	res, err := kmgraph.RunLowerBound(inst, kmgraph.Config{K: 4, Seed: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("SCS == DISJ:", res.SCSHolds == res.Disjoint)
	// Output: SCS == DISJ: true
}

func ExampleGraphBuilder() {
	b := kmgraph.NewGraphBuilder(4)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 7)
	g := b.Build()
	fmt.Println(g.N(), "vertices,", g.M(), "edges")
	// Output: 4 vertices, 2 edges
}
