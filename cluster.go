// The resident Cluster API: load a graph onto k machines once, then run
// every algorithm family as a cancellable job against that residency.
// This is the library's serving front door; the one-shot free functions
// (Connectivity, MST, ApproxMinCut, Verify*) remain as single-run
// wrappers for experiments and ablations.

package kmgraph

import (
	"context"
	"errors"
	"io"
	"os"
	"time"

	"kmgraph/internal/graph"
	"kmgraph/internal/resident"
	"kmgraph/internal/sketch"
	"kmgraph/internal/store"
	"kmgraph/internal/transport"
)

// DefaultClusterK is the machine count NewCluster uses when WithK is not
// given.
const DefaultClusterK = 8

// Cluster is a resident k-machine cluster: NewCluster loads and
// partitions the graph exactly once, and every method call is a job
// served by that residency — no per-call cluster construction, no graph
// re-distribution. Jobs are serialized through an internal queue, so a
// Cluster is safe for concurrent use; every job accepts a
// context.Context and a cancelled job stops at the next phase boundary
// without wedging the cluster.
//
// The residency keeps incremental state between jobs: maintained sketch
// banks and a certificate forest make Connectivity after ApplyBatch far
// cheaper than a static re-run, and Metrics() proves the load phase is
// paid exactly once.
type Cluster struct {
	e *resident.Engine
}

// ClusterOption configures NewCluster and OpenCluster (functional
// options replacing the per-algorithm Config structs of the one-shot
// API).
type ClusterOption func(*clusterOptions)

// clusterOptions is the resolved option set: the resident engine config
// plus the load-path selection (OpenCluster's edge source override).
type clusterOptions struct {
	resident.Config
	src graph.EdgeSource
}

// WithEdgeSource makes OpenCluster load from the given stream instead of
// a file path (pass "" as the path). The source is streamed by the
// shard-direct loader — two passes, each endpoint hashed to its owner
// machine — and a coordinator-side Graph is never built. Any EdgeSource
// works: a store Reader's Source, an OpenEdgeList scanner, a streaming
// generator, or a custom feed.
func WithEdgeSource(src EdgeSource) ClusterOption {
	return func(c *clusterOptions) { c.src = src }
}

// WithK sets the machine count (default DefaultClusterK).
func WithK(k int) ClusterOption { return func(c *clusterOptions) { c.K = k } }

// WithSeed sets the seed driving the vertex partition and all coins.
func WithSeed(seed int64) ClusterOption { return func(c *clusterOptions) { c.Seed = seed } }

// WithBandwidth sets the per-link per-round bit budget (default
// DefaultBandwidth(n)).
func WithBandwidth(bits int) ClusterOption {
	return func(c *clusterOptions) { c.BandwidthBits = bits }
}

// WithMessageOverhead sets the per-message framing bits (default 64).
func WithMessageOverhead(bits int) ClusterOption {
	return func(c *clusterOptions) { c.MessageOverheadBits = bits }
}

// WithMaxPhases caps Boruvka phases per job (default 12·ceil(log2 n)+4).
func WithMaxPhases(p int) ClusterOption {
	return func(c *clusterOptions) { c.MaxPhasesPerQuery = p }
}

// WithBanks sets the number of persistent sketch banks (default
// 2·ceil(log2 n)+4).
func WithBanks(b int) ClusterOption { return func(c *clusterOptions) { c.Banks = b } }

// WithSketchParams overrides the sketch dimensions (default
// sketch defaults for n).
func WithSketchParams(p SketchParams) ClusterOption {
	return func(c *clusterOptions) { c.Sketch = p }
}

// WithCollapseLevelWise selects the paper-exact O(depth) tree collapse
// (ablation E10).
func WithCollapseLevelWise() ClusterOption {
	return func(c *clusterOptions) { c.CollapseLevelWise = true }
}

// WithCoinMerge selects the footnote-9 coin merge rule.
func WithCoinMerge() ClusterOption { return func(c *clusterOptions) { c.CoinMerge = true } }

// WithFaithfulRandomness distributes shared random bits in-model and
// drives proxy selection through the d-wise independent family (§2.2).
func WithFaithfulRandomness() ClusterOption {
	return func(c *clusterOptions) { c.FaithfulRandomness = true }
}

// WithMaxRounds caps cumulative engine rounds for the whole session
// (default 5,000,000).
func WithMaxRounds(r int) ClusterOption { return func(c *clusterOptions) { c.MaxRounds = r } }

// WithMaxElimIters caps MST elimination iterations per phase (default
// 2·ceil(log2 n)+8).
func WithMaxElimIters(i int) ClusterOption {
	return func(c *clusterOptions) { c.MaxElimIters = i }
}

// WithJobTimeout sets a default wall-clock deadline for every job whose
// context carries no earlier deadline (0 = none). The deadline covers
// queueing and execution; an expired job returns
// context.DeadlineExceeded at the next phase boundary and the cluster
// stays serviceable. It is a safety net for embedders whose call sites
// cannot all be trusted to pass deadline contexts; kmserve instead
// derives an explicit per-request context from its ?timeout= parameter.
func WithJobTimeout(d time.Duration) ClusterOption {
	return func(c *clusterOptions) { c.JobTimeout = d }
}

// WithObserver registers a per-phase progress hook: job start/done events
// and one event per merge phase with the cluster round counter, active
// component count, and failure count. The hook runs on engine goroutines
// between metered rounds; it must be fast and goroutine-safe.
func WithObserver(fn func(ClusterEvent)) ClusterOption {
	return func(c *clusterOptions) { c.Observer = fn }
}

// WithPhaseMetrics makes every observer phase and job event carry a deep
// cluster-wide metrics snapshot (ClusterEvent.Snap): cumulative rounds,
// messages, payload bytes, and the full per-link bit matrix. This is
// what the trace exporters consume to annotate spans with per-phase
// message/byte deltas and link skew. Each snapshot costs one
// coordinator round-trip and a k×k copy outside the metered rounds;
// leave it off when the observer only needs phase/round progress.
func WithPhaseMetrics() ClusterOption {
	return func(c *clusterOptions) { c.PhaseMetrics = true }
}

// SketchParams fixes sketch dimensions (see WithSketchParams).
type SketchParams = sketch.Params

// ClusterEvent is a progress notification from a Cluster observer.
type ClusterEvent = resident.Event

// ClusterMetrics is a Cluster's cumulative cost accounting, split into
// the one-time load and the running total.
type ClusterMetrics = resident.Metrics

// Problem identifies a Theorem 4 verification problem for Cluster.Verify.
type Problem = resident.Problem

// The eight verification problems (Theorem 4).
const (
	ProblemSpanningConnectedSubgraph = resident.SpanningConnectedSubgraph
	ProblemCut                       = resident.CutVerification
	ProblemSTConnectivity            = resident.STConnectivity
	ProblemEdgeOnAllPaths            = resident.EdgeOnAllPaths
	ProblemSTCut                     = resident.STCutVerification
	ProblemBipartiteness             = resident.Bipartiteness
	ProblemCycleContainment          = resident.CycleContainment
	ProblemECycleContainment         = resident.ECycleContainment
)

// VerifyArgs carries the per-problem arguments of Cluster.Verify.
type VerifyArgs = resident.VerifyArgs

// ErrClusterClosed is returned by jobs submitted to a closed Cluster.
var ErrClusterClosed = resident.ErrClosed

// ErrObserverPanic is returned by a job during which a WithObserver hook
// panicked: the panic is recovered (the cluster stays serviceable) and
// counted in Metrics().ObserverPanics, but the job is failed so the
// caller knows its progress stream is incomplete.
var ErrObserverPanic = resident.ErrObserverPanic

// ErrLinkDown is the typed failure of distributed jobs (-transport tcp,
// kmworker fleets): a peer process died or desynchronized mid-round, so
// the job fails promptly at the barrier instead of hanging. Match with
// errors.Is to tell a crashed fleet from a bad job spec.
var ErrLinkDown = transport.ErrLinkDown

// NewCluster loads g across a resident k-machine cluster (one graph
// distribution, metered as Metrics().Load) and returns the job interface.
// Close it when done.
//
// NewCluster serves graphs already materialized in memory; for graphs
// too large to materialize, use OpenCluster, whose shard-direct loader
// produces a bit-identical residency from a stream.
func NewCluster(g *Graph, opts ...ClusterOption) (*Cluster, error) {
	o := resolveClusterOptions(opts)
	if o.src != nil {
		return nil, errors.New("kmgraph: WithEdgeSource is an OpenCluster option; NewCluster takes a *Graph")
	}
	e, err := resident.New(g, o.Config)
	if err != nil {
		return nil, err
	}
	return &Cluster{e: e}, nil
}

// OpenCluster loads a stored graph across a resident k-machine cluster
// shard-direct: the input is streamed (twice — a degree pass and a fill
// pass), each endpoint hashed to its owner machine, and per-machine
// adjacency shards filled in place. The full graph is never
// materialized on the coordinator, which is what lets million-vertex
// inputs serve from a fraction of NewCluster's peak memory; the
// resulting residency is bit-identical to NewCluster on the same graph
// and seed (same partition, rounds, and Metrics).
//
// path names either a kmgs binary store (written by cmd/kmconvert or
// store.Write; detected by magic) or a whitespace-separated text edge
// list. With WithEdgeSource, path must be "" and the given stream is
// loaded instead.
func OpenCluster(path string, opts ...ClusterOption) (*Cluster, error) {
	o := resolveClusterOptions(opts)
	src := o.src
	var closer io.Closer
	switch {
	case src != nil:
		if path != "" {
			return nil, errors.New("kmgraph: OpenCluster takes a path or WithEdgeSource, not both")
		}
	case path == "":
		return nil, errors.New("kmgraph: OpenCluster needs a path or WithEdgeSource")
	default:
		var err error
		src, closer, err = OpenSource(path)
		if err != nil {
			return nil, err
		}
	}
	e, err := resident.NewFromSource(src, o.Config)
	if closer != nil {
		// The residency owns the shards now; the mapping/file can go.
		closer.Close()
	}
	if err != nil {
		return nil, err
	}
	return &Cluster{e: e}, nil
}

func resolveClusterOptions(opts []ClusterOption) *clusterOptions {
	o := &clusterOptions{Config: resident.Config{K: DefaultClusterK}}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// OpenSource opens a graph file as an EdgeSource: a kmgs binary store
// (detected by magic) or a whitespace-separated text edge list —
// exactly the sniffing OpenCluster performs. Close the returned closer
// when done with the source.
func OpenSource(path string) (EdgeSource, io.Closer, error) {
	isStore, err := sniffStore(path)
	if err != nil {
		return nil, nil, err
	}
	if isStore {
		r, err := store.Open(path)
		if err != nil {
			return nil, nil, err
		}
		return r.Source(), r, nil
	}
	s, err := graph.OpenEdgeList(path)
	if err != nil {
		return nil, nil, err
	}
	return s, s, nil
}

// sniffStore reports whether the file at path starts with the kmgs
// container magic.
func sniffStore(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false, nil // shorter than any container: treat as text
	}
	return string(magic[:]) == store.Magic, nil
}

// Connectivity answers components/labels/spanning-forest on the current
// graph (Theorem 1 as a resident job). The first call costs about a
// static run; calls after ApplyBatch run incrementally from the
// certificate and maintained banks.
func (c *Cluster) Connectivity(ctx context.Context) (*QueryResult, error) {
	return c.e.Query(ctx)
}

// SpanningTree returns a spanning forest of the current graph — the ST
// corollary the paper highlights as breaking the Ω̃(n/k) barrier —
// served from the residency's certificate-backed connectivity query.
func (c *Cluster) SpanningTree(ctx context.Context) (*QueryResult, error) {
	return c.e.Query(ctx)
}

// MSTOption configures a Cluster MST job.
type MSTOption func(*mstJobOpts)

type mstJobOpts struct{ strong bool }

// StrongOutput selects the Theorem 2(b) output criterion: every MST edge
// is delivered to both endpoints' home machines.
func StrongOutput() MSTOption { return func(o *mstJobOpts) { o.strong = true } }

// MST constructs the minimum spanning forest of the current graph
// (Theorem 2) against the residency.
func (c *Cluster) MST(ctx context.Context, opts ...MSTOption) (*MSTResult, error) {
	var o mstJobOpts
	for _, opt := range opts {
		opt(&o)
	}
	return c.e.MST(ctx, o.strong)
}

// MinCutOption configures a Cluster ApproxMinCut job.
type MinCutOption func(*minCutJobOpts)

type minCutJobOpts struct{ trials, maxLevel int }

// WithTrials sets the independent samples per level (default 3).
func WithTrials(t int) MinCutOption { return func(o *minCutJobOpts) { o.trials = t } }

// WithMaxLevel caps the sampling levels (default 40).
func WithMaxLevel(l int) MinCutOption { return func(o *minCutJobOpts) { o.maxLevel = l } }

// ApproxMinCut estimates the edge connectivity of the current graph
// within an O(log n) factor (Theorem 3), each sampling trial a
// connectivity run on the residency.
func (c *Cluster) ApproxMinCut(ctx context.Context, opts ...MinCutOption) (*MinCutResult, error) {
	var o minCutJobOpts
	for _, opt := range opts {
		opt(&o)
	}
	return c.e.MinCut(ctx, o.trials, o.maxLevel)
}

// Verify runs one of the Theorem 4 verification problems on the current
// graph.
func (c *Cluster) Verify(ctx context.Context, p Problem, args VerifyArgs) (*VerifyOutcome, error) {
	return c.e.Verify(ctx, p, args)
}

// ApplyBatch applies a batch of edge insertions/deletions to the resident
// graph (the dynamic subsystem as a Cluster job): sketch banks update by
// linearity and the certificate absorbs accepted ops, so the next
// Connectivity call is incremental.
func (c *Cluster) ApplyBatch(ctx context.Context, ops []EdgeOp) (*BatchResult, error) {
	return c.e.ApplyBatch(ctx, ops)
}

// Metrics reports cumulative cost accounting: the one-time load cost, the
// running total, job counters, and the live edge count. Safe to call
// concurrently with running jobs.
func (c *Cluster) Metrics() ClusterMetrics { return c.e.Metrics() }

// N returns the vertex count.
func (c *Cluster) N() int { return c.e.N() }

// K returns the machine count.
func (c *Cluster) K() int { return c.e.K() }

// Epoch returns the graph's mutation epoch: 0 at load, bumped by every
// ApplyBatch that changed the edge set. Two equal reads bracket an
// unchanged graph, so a result computed at epoch x may be served from a
// cache for as long as Epoch() still returns x — the invariant the
// kmserve result cache is built on. Safe to call concurrently with
// running jobs.
func (c *Cluster) Epoch() uint64 { return c.e.Epoch() }

// Queue snapshots the job admission queue: jobs waiting for the cluster
// and the in-flight job count (0 or 1). Safe to call concurrently with
// running jobs; serving layers use it for backpressure and load
// shedding.
func (c *Cluster) Queue() (queued, running int) { return c.e.Queue() }

// Close shuts the resident cluster down (waiting for the in-flight job,
// if any). Further jobs return ErrClusterClosed; Close is idempotent.
func (c *Cluster) Close() error {
	_, err := c.e.Close()
	return err
}
