// Quickstart: build a graph, run the Õ(n/k²) connectivity and MST
// algorithms on a simulated 8-machine cluster, and inspect the costs.
package main

import (
	"fmt"
	"log"

	"kmgraph"
)

func main() {
	// A random graph with 2,000 vertices and 6,000 edges, plus distinct
	// edge weights so the MST is unique.
	g := kmgraph.WithDistinctWeights(kmgraph.GNM(2000, 6000, 7), 8)
	fmt.Printf("input: n=%d m=%d\n", g.N(), g.M())

	// Connected components on k=8 machines (random vertex partition).
	conn, err := kmgraph.Connectivity(g, kmgraph.Config{K: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connectivity: %d component(s) in %d rounds (%d Boruvka phases)\n",
		conn.Components, conn.Metrics.Rounds, conn.Phases)

	// Compare against the sequential oracle.
	_, oracleCount := kmgraph.ComponentsOracle(g)
	fmt.Printf("oracle agrees: %v\n", conn.Components == oracleCount)

	// Minimum spanning tree on the same cluster.
	mst, err := kmgraph.MST(g, kmgraph.MSTConfig{Config: kmgraph.Config{K: 8, Seed: 1}})
	if err != nil {
		log.Fatal(err)
	}
	_, oracleWeight := kmgraph.MSTOracle(g)
	fmt.Printf("mst: weight=%d (%d edges) in %d rounds; oracle match: %v\n",
		mst.TotalWeight, len(mst.Edges), mst.Metrics.Rounds, mst.TotalWeight == oracleWeight)

	// The speedup story (Theorem 1): rounds fall roughly like 1/k².
	fmt.Println("\nscaling with machines:")
	for _, k := range []int{2, 4, 8, 16} {
		r, err := kmgraph.Connectivity(g, kmgraph.Config{K: k, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%-3d rounds=%d\n", k, r.Metrics.Rounds)
	}
}
