// Quickstart: load a graph onto a simulated 8-machine resident cluster
// once, then serve connectivity, MST, min-cut, verification, and a
// dynamic update batch as jobs against that residency — the serving model
// the paper's Õ(n/k²) algorithms are built for.
package main

import (
	"context"
	"fmt"
	"log"

	"kmgraph"
)

func main() {
	ctx := context.Background()

	// A connected random graph with 2,000 vertices and 6,000 edges, plus
	// distinct edge weights so the MST is unique.
	g := kmgraph.WithDistinctWeights(kmgraph.RandomConnected(2000, 6000, 7), 8)
	fmt.Printf("input: n=%d m=%d\n", g.N(), g.M())

	// One graph load onto k=8 machines (random vertex partition). Every
	// job below reuses this residency; Metrics proves the load is paid
	// exactly once.
	c, err := kmgraph.NewCluster(g, kmgraph.WithK(8), kmgraph.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("cluster: k=%d, load=%d rounds (paid once)\n", c.K(), c.Metrics().LoadRounds)

	// Connected components (Theorem 1).
	conn, err := c.Connectivity(ctx)
	if err != nil {
		log.Fatal(err)
	}
	_, oracleCount := kmgraph.ComponentsOracle(g)
	fmt.Printf("connectivity: %d component(s) in %d rounds (%d phases); oracle agrees: %v\n",
		conn.Components, conn.Rounds, conn.Phases, conn.Components == oracleCount)

	// Minimum spanning tree (Theorem 2) — same residency, no re-load.
	mst, err := c.MST(ctx)
	if err != nil {
		log.Fatal(err)
	}
	_, oracleWeight := kmgraph.MSTOracle(g)
	fmt.Printf("mst: weight=%d (%d edges) in %d rounds; oracle match: %v\n",
		mst.TotalWeight, len(mst.Edges), mst.Metrics.Rounds, mst.TotalWeight == oracleWeight)

	// O(log n)-approximate min cut (Theorem 3).
	cut, err := c.ApproxMinCut(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min cut: estimate %.1f (%d sampling runs, %d rounds)\n",
		cut.Estimate, cut.Runs, cut.Rounds)

	// A verification problem (Theorem 4).
	bip, err := c.Verify(ctx, kmgraph.ProblemBipartiteness, kmgraph.VerifyArgs{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bipartite: %v (oracle: %v)\n", bip.Holds, kmgraph.IsBipartiteOracle(g))

	// Mutate the resident graph and re-query: the second query runs
	// incrementally from the certificate and maintained sketch banks.
	if _, err := c.ApplyBatch(ctx, []kmgraph.EdgeOp{{U: 0, V: 1999, W: 1}}); err != nil {
		log.Fatal(err)
	}
	conn2, err := c.Connectivity(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after batch: %d component(s) in %d incremental rounds (vs %d for the first query)\n",
		conn2.Components, conn2.Rounds, conn.Rounds)

	m := c.Metrics()
	fmt.Printf("\ntotals: %d jobs, %d rounds = %d load (once) + %d job rounds\n",
		m.Jobs, m.Total.Rounds, m.LoadRounds, m.Total.Rounds-m.LoadRounds)

	// The speedup story (Theorem 1): rounds fall roughly like 1/k².
	fmt.Println("\nscaling with machines (fresh one-shot runs):")
	for _, k := range []int{2, 4, 8, 16} {
		r, err := kmgraph.Connectivity(g, kmgraph.Config{K: k, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%-3d rounds=%d\n", k, r.Metrics.Rounds)
	}
}
