// Distributed verification: the eight Theorem 4 problems on one scenario —
// a road network (grid) with a proposed spanning backbone — each solved in
// Õ(n/k²) rounds via reductions to the fast connectivity algorithm.
package main

import (
	"fmt"
	"log"

	"kmgraph"
)

func main() {
	// A 32x32 road grid and a proposed backbone (a spanning tree).
	g := kmgraph.Grid(32, 32)
	backbone, _ := kmgraph.MSTOracle(g)
	cfg := kmgraph.Config{K: 8, Seed: 21}
	fmt.Printf("road grid: n=%d m=%d; backbone: %d roads\n\n", g.N(), g.M(), len(backbone))

	report := func(name string, out *kmgraph.VerifyOutcome, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-42s %-5v (%d runs, %d rounds)\n", name, out.Holds, out.Runs, out.Rounds)
	}

	out, err := kmgraph.VerifySpanningConnectedSubgraph(g, backbone, cfg)
	report("backbone spans and connects the city?", out, err)

	out, err = kmgraph.VerifyCut(g, backbone[:100], cfg)
	report("do the first 100 backbone roads form a cut?", out, err)

	out, err = kmgraph.VerifySTConnectivity(g, 0, g.N()-1, cfg)
	report("corner-to-corner route exists?", out, err)

	cross := kmgraph.Edge{U: 0, V: 1}
	out, err = kmgraph.VerifyEdgeOnAllPaths(g, 0, 1, cross, cfg)
	report("is road (0,1) the only way from 0 to 1?", out, err)

	out, err = kmgraph.VerifySTCut(g, 0, g.N()-1, g.Edges()[:64], cfg)
	report("do the first 64 roads separate the corners?", out, err)

	out, err = kmgraph.VerifyBipartiteness(g, cfg)
	report("is the grid two-colorable?", out, err)

	out, err = kmgraph.VerifyCycleContainment(g, cfg)
	report("does the grid contain a cycle?", out, err)

	out, err = kmgraph.VerifyECycleContainment(g, cross, cfg)
	report("is road (0,1) on some cycle?", out, err)
}
