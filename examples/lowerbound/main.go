// Lower-bound demonstration (Theorem 5): solving spanning-connected-
// subgraph verification answers two-party set disjointness, so any
// algorithm must move Ω(b) bits between the Alice and Bob machine halves.
// This example runs the real connectivity algorithm on Figure-1 instances
// and meters exactly that cut traffic.
package main

import (
	"fmt"
	"log"

	"kmgraph"
)

func main() {
	fmt.Println("Figure-1 construction: s, t, and b pairs (u_i, v_i);")
	fmt.Println("H misses (s,u_i) iff X[i]=1 and (v_i,t) iff Y[i]=1,")
	fmt.Println("so H spans and connects iff X and Y are disjoint.")
	fmt.Println()

	const k = 4
	for _, b := range []int{32, 64, 128, 256} {
		inst := kmgraph.NewDisjointnessInstance(b, int64(b))
		res, err := kmgraph.RunLowerBound(inst, kmgraph.Config{K: k, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("b=%-4d SCS=%-5v DISJ=%-5v agree=%v  cut=%8d bits (%5.0f bits/input-bit)  rounds=%d\n",
			b, res.SCSHolds, res.Disjoint, res.SCSHolds == res.Disjoint,
			res.CutBits, float64(res.CutBits)/float64(b), res.Rounds)
	}

	fmt.Println()
	fmt.Println("the Alice/Bob cut has capacity 2(k/2)²·B bits per round, so Ω(b)")
	fmt.Println("cut bits force Ω̃(b/k²) rounds — the Theorem 5 lower bound. With")
	fmt.Println("b = (n-2)/2 this matches the algorithm's Õ(n/k²) upper bound.")
}
