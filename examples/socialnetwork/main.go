// Social network analysis: discover friend circles (connected components)
// in a synthetic social graph distributed across a cluster — the workload
// class (social networks, web graphs) that motivates the paper's k-machine
// model, where the graph is far too large for one machine and is hash-
// partitioned across workers, as in Pregel/Giraph.
package main

import (
	"fmt"
	"log"
	"sort"

	"kmgraph"
)

func main() {
	// A stochastic block model: 4,000 users in 25 tight communities with
	// no cross-community edges at all — isolated friend circles.
	const users, circles = 4000, 25
	g := kmgraph.PlantedPartition(users, circles, 0.05, 0, 42)
	fmt.Printf("social graph: %d users, %d friendships\n", g.N(), g.M())

	res, err := kmgraph.Connectivity(g, kmgraph.Config{K: 16, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d friend circles in %d rounds on 16 machines\n",
		res.Components, res.Metrics.Rounds)

	// Circle size distribution from the labeling.
	sizes := map[uint64]int{}
	for _, l := range res.Labels {
		sizes[l]++
	}
	var dist []int
	for _, s := range sizes {
		dist = append(dist, s)
	}
	sort.Ints(dist)
	fmt.Printf("circle sizes: min=%d median=%d max=%d\n",
		dist[0], dist[len(dist)/2], dist[len(dist)-1])

	// Cross-check against the sequential oracle.
	_, want := kmgraph.ComponentsOracle(g)
	if res.Components != want {
		log.Fatalf("disagreement with oracle: %d vs %d", res.Components, want)
	}
	fmt.Println("oracle agrees")

	// Is the friendship graph bipartite (a pure "two-camps" structure)?
	bip, err := kmgraph.VerifyBipartiteness(g, kmgraph.Config{K: 16, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bipartite: %v (checked distributedly in %d rounds)\n", bip.Holds, bip.Rounds)
}
