// Reliability analysis: estimate how many link failures disconnect a
// network, using the paper's O(log n)-approximate min-cut (Theorem 3) —
// Karger sampling at geometric rates with the fast connectivity algorithm
// as the tester.
package main

import (
	"fmt"
	"log"

	"kmgraph"
)

func main() {
	cases := []struct {
		name string
		g    *kmgraph.Graph
	}{
		{"ring of 200 routers", kmgraph.Cycle(200)},
		{"two datacenters, 3 cross-links", kmgraph.TwoCliquesBridged(40, 3, 1)},
		{"two datacenters, 12 cross-links", kmgraph.TwoCliquesBridged(40, 12, 2)},
		{"full mesh of 60", kmgraph.Complete(60)},
	}
	for _, tc := range cases {
		trueCut := kmgraph.MinCutOracle(tc.g)
		res, err := kmgraph.ApproxMinCut(tc.g, kmgraph.MinCutConfig{
			Config: kmgraph.Config{K: 8, Seed: 9},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-35s true λ=%-3d estimate=%-8.1f (%d sampling runs, %d rounds)\n",
			tc.name, trueCut, res.Estimate, res.Runs, res.Rounds)
	}
	fmt.Println("\nestimates are within an O(log n) factor of λ w.h.p. (Theorem 3)")
}
