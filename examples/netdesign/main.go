// Network design: pick the cheapest backbone (an MST) for a weighted
// infrastructure graph, distributedly, and compare the two partition
// models the paper analyzes — random vertex partition (Õ(n/k²), Theorem
// 2) versus random edge partition (Θ̃(n/k), §1.3) — and the two output
// criteria of Theorem 2.
package main

import (
	"fmt"
	"log"

	"kmgraph"
)

func main() {
	// 3,000 sites with 12,000 candidate links, cost = distinct weights.
	g := kmgraph.WithDistinctWeights(kmgraph.GNM(3000, 12000, 11), 12)
	_, best := kmgraph.MSTOracle(g)
	fmt.Printf("candidate network: %d sites, %d links; optimal backbone cost %d\n",
		g.N(), g.M(), best)

	const k = 12

	// RVP model (the paper's main setting).
	rvp, err := kmgraph.MST(g, kmgraph.MSTConfig{Config: kmgraph.Config{K: k, Seed: 5}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RVP backbone: cost=%d in %d rounds (optimal: %v)\n",
		rvp.TotalWeight, rvp.Metrics.Rounds, rvp.TotalWeight == best)

	// REP model: local cycle-property filtering + conversion.
	repRes, err := kmgraph.REPMST(g, kmgraph.REPConfig{K: k, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("REP backbone: cost=%d, filtered %d→%d links, %d rounds (conversion %d)\n",
		repRes.TotalWeight, g.M(), repRes.FilteredEdges, repRes.TotalRounds, repRes.ConversionRounds)

	// Strong output (every site's machine learns its incident backbone
	// links): the Theorem 2(b) criterion.
	strong, err := kmgraph.MST(g, kmgraph.MSTConfig{
		Config: kmgraph.Config{K: k, Seed: 5}, StrongOutput: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strong output: +%d dissemination rounds; %d sites now know their links\n",
		strong.Metrics.Rounds-strong.WeakRounds, len(strong.VertexEdges))
}
